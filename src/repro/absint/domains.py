"""Abstract values over bit-vectors: the reduced product of three domains.

An :class:`AbstractValue` over-approximates the set of concrete values a
``width``-bit quantity can take, tracking three cooperating components:

* **ternary / known bits** — per bit: ⊤ (unknown), 0 or 1, encoded as a
  mask of known bit positions (``known``) plus their values (``bits``);
* **constancy** — the value is one concrete constant (exactly the case
  ``known == mask(width)``; :meth:`is_const` / :meth:`const_value` expose
  it, and the fixpoint engine's greatest-fixpoint constancy pass feeds it);
* **intervals** — an unsigned range ``[lo, hi]`` (never wrapping), widened
  by the fixpoint engine for counter-like latches.

The components are kept mutually *reduced* by the :func:`make` factory:
the interval is tightened to the nearest values consistent with the known
bits, the bits shared by every value in ``[lo, hi]`` (their common leading
bits) become known, and a contradiction between the components collapses
to ``BOTTOM`` (no value at all).  Every operation below returns reduced
values, so the three views can be read independently at any time.

Values are immutable; equality is componentwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AbsintError
from repro.utils.bitops import mask


@dataclass(frozen=True)
class AbstractValue:
    """A reduced known-bits × constancy × interval abstraction.

    Build values through :func:`make`, :func:`top`, :func:`const`,
    :func:`from_bits` or :func:`from_interval` — the raw constructor does
    not reduce and is reserved for the factories.
    """

    width: int
    #: Mask of bit positions whose value is known.
    known: int
    #: The known bits' values (always 0 at unknown positions).
    bits: int
    #: Unsigned interval bounds, ``lo <= hi`` (``lo > hi`` encodes bottom).
    lo: int
    hi: int

    # ------------------------------------------------------------- predicates

    @property
    def is_bottom(self) -> bool:
        """No concrete value is represented (contradictory components)."""
        return self.lo > self.hi

    @property
    def is_const(self) -> bool:
        """Exactly one concrete value is represented."""
        return not self.is_bottom and self.known == mask(self.width)

    def const_value(self) -> int:
        if not self.is_const:
            raise AbsintError("abstract value is not a constant")
        return self.bits

    @property
    def is_top(self) -> bool:
        return self.known == 0 and self.lo == 0 and self.hi == mask(self.width)

    def contains(self, value: int) -> bool:
        """Is the concrete ``value`` inside this abstraction?"""
        value &= mask(self.width)
        if self.is_bottom:
            return False
        if (value & self.known) != self.bits:
            return False
        return self.lo <= value <= self.hi

    @property
    def unknown_count(self) -> int:
        """Number of bits whose value is not known."""
        return self.width - bin(self.known).count("1")

    def describe(self) -> str:
        """A compact human-readable rendering (for lint messages and CLIs)."""
        if self.is_bottom:
            return "bottom"
        if self.is_const:
            return f"const {self.bits:#x}"
        parts = []
        if self.known:
            ternary = "".join(
                (str((self.bits >> i) & 1) if (self.known >> i) & 1 else "x")
                for i in reversed(range(self.width))
            )
            parts.append(f"bits {ternary}")
        if self.lo != 0 or self.hi != mask(self.width):
            parts.append(f"[{self.lo}, {self.hi}]")
        return " ".join(parts) if parts else "top"


# ---------------------------------------------------------------------------
# reduction helpers
# ---------------------------------------------------------------------------


def _min_consistent_ge(lo: int, known: int, bits: int, width: int):
    """Smallest ``x >= lo`` with ``x & known == bits``, or ``None``.

    If ``lo`` itself is consistent it is the answer.  Otherwise every
    candidate ``x > lo`` agrees with ``lo`` above some highest differing
    bit ``j`` where ``x`` has 1 and ``lo`` has 0; minimising the bits
    below ``j`` (free bits to 0) gives the best candidate per ``j``.
    """
    if (lo & known) == bits:
        return lo
    best = None
    for j in range(width):
        if (lo >> j) & 1:
            continue
        if (known >> j) & 1 and not (bits >> j) & 1:
            continue  # the pattern forces bit j to 0, cannot raise it
        prefix = ~mask(j + 1) & mask(width)
        if (lo & known & prefix) != (bits & prefix):
            continue  # lo's prefix already violates the pattern
        x = (lo & prefix) | (1 << j) | (bits & mask(j))
        if best is None or x < best:
            best = x
    return best


def _max_consistent_le(hi: int, known: int, bits: int, width: int):
    """Largest ``x <= hi`` with ``x & known == bits``, or ``None``.

    Mirror image of :func:`_min_consistent_ge`: below the highest
    differing bit (``x`` 0, ``hi`` 1) every free bit saturates to 1.
    """
    if (hi & known) == bits:
        return hi
    best = None
    for j in range(width):
        if not (hi >> j) & 1:
            continue
        if (known >> j) & 1 and (bits >> j) & 1:
            continue  # the pattern forces bit j to 1, cannot clear it
        prefix = ~mask(j + 1) & mask(width)
        if (hi & known & prefix) != (bits & prefix):
            continue
        x = (hi & prefix) | (bits & mask(j)) | (mask(j) & ~known)
        if best is None or x > best:
            best = x
    return best


def make(width: int, known: int, bits: int, lo: int, hi: int) -> AbstractValue:
    """The reduced abstract value for the given raw components.

    Applies the reduced-product exchange until fixpoint (two passes
    suffice: interval→bits only ever *adds* known bits, and bits→interval
    only ever tightens bounds consistent with them):

    * clamp everything into ``width`` bits and normalise ``bits``;
    * tighten ``[lo, hi]`` to the nearest values consistent with the known
      bits (none left → bottom);
    * make the common leading bits of ``lo`` and ``hi`` known;
    * re-tighten the interval against the enlarged known set.
    """
    m = mask(width)
    bits &= known & m
    known &= m
    lo = max(0, lo)
    hi = min(hi, m)
    if lo > hi:
        return bottom(width)

    for _ in range(2):
        new_lo = _min_consistent_ge(lo, known, bits, width)
        new_hi = _max_consistent_le(hi, known, bits, width)
        if new_lo is None or new_hi is None or new_lo > new_hi:
            return bottom(width)
        lo, hi = new_lo, new_hi
        # Bits shared by every value in [lo, hi]: the common leading bits.
        diff = lo ^ hi
        if diff == 0:
            known, bits = m, lo
            break
        high_known = (m >> diff.bit_length()) << diff.bit_length()
        add = high_known & ~known
        if not add:
            break
        known |= add
        bits |= lo & add
    return AbstractValue(width=width, known=known, bits=bits, lo=lo, hi=hi)


# ---------------------------------------------------------------------------
# factories
# ---------------------------------------------------------------------------


def top(width: int) -> AbstractValue:
    return AbstractValue(width=width, known=0, bits=0, lo=0, hi=mask(width))


def bottom(width: int) -> AbstractValue:
    return AbstractValue(width=width, known=mask(width), bits=0, lo=1, hi=0)


def const(width: int, value: int) -> AbstractValue:
    value &= mask(width)
    return AbstractValue(
        width=width, known=mask(width), bits=value, lo=value, hi=value
    )


def from_bits(width: int, known: int, bits: int) -> AbstractValue:
    return make(width, known, bits, 0, mask(width))


def from_interval(width: int, lo: int, hi: int) -> AbstractValue:
    return make(width, 0, 0, lo, hi)


# ---------------------------------------------------------------------------
# lattice operations
# ---------------------------------------------------------------------------


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound: every value of either side is represented."""
    if a.width != b.width:
        raise AbsintError(f"join width mismatch: {a.width} vs {b.width}")
    if a.is_bottom:
        return b
    if b.is_bottom:
        return a
    known = a.known & b.known & ~(a.bits ^ b.bits)
    return make(
        a.width,
        known,
        a.bits & known,
        min(a.lo, b.lo),
        max(a.hi, b.hi),
    )


def meet(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Greatest lower bound: only values both sides represent.

    Used for branch-condition refinement (``assume``), never for joining
    flow — a contradictory meet legitimately yields bottom.
    """
    if a.width != b.width:
        raise AbsintError(f"meet width mismatch: {a.width} vs {b.width}")
    if a.is_bottom or b.is_bottom:
        return bottom(a.width)
    common = a.known & b.known
    if (a.bits & common) != (b.bits & common):
        return bottom(a.width)
    return make(
        a.width,
        a.known | b.known,
        a.bits | b.bits,
        max(a.lo, b.lo),
        min(a.hi, b.hi),
    )


def widen(old: AbstractValue, new: AbstractValue) -> AbstractValue:
    """Standard interval widening; the finite-height components pass through.

    ``new`` must already include ``old`` (callers join first).  An unstable
    bound jumps straight to its extreme, so a counter-like latch converges
    after one widening step instead of one step per reachable value.  The
    known-bits component needs no widening — it can only lose bits under
    join, at most ``width`` times.
    """
    if old.is_bottom:
        return new
    lo = new.lo if new.lo >= old.lo else 0
    hi = new.hi if new.hi <= old.hi else mask(new.width)
    return make(new.width, new.known, new.bits, lo, hi)


def subsumes(a: AbstractValue, b: AbstractValue) -> bool:
    """Does ``a`` represent every value that ``b`` does (``b ⊑ a``)?"""
    if a.width != b.width:
        raise AbsintError(f"subsumes width mismatch: {a.width} vs {b.width}")
    if b.is_bottom:
        return True
    if a.is_bottom:
        return False
    if (a.known & ~b.known) != 0:
        return False
    if (b.bits & a.known) != a.bits:
        return False
    return a.lo <= b.lo and b.hi <= a.hi
