"""Entry point for ``python -m repro.absint``."""

import sys

from repro.absint.cli import main

sys.exit(main())
