"""Abstract transfer function over the full ``repro.smt.terms`` operator set.

:func:`abstract_eval` interprets a term DAG under an environment mapping
variable names to :class:`~repro.absint.domains.AbstractValue`, mirroring
the shape of :func:`repro.smt.evaluator.evaluate` (iterative, cached by
``tid``).  When every operand is a proven constant the transfer delegates
to the concrete evaluator's operator table, so the abstract semantics can
never drift from the concrete ones on the constant fragment.

Every per-operator rule below over-approximates: the result's
concretisation includes ``op(x1..xn)`` for all concrete ``xi`` drawn from
the operand abstractions.  The randomized simulation-subsumption tests
check exactly this against :func:`repro.smt.evaluator.evaluate`.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.absint import domains as D
from repro.absint.domains import AbstractValue
from repro.errors import AbsintError
from repro.smt import terms as T
from repro.smt.evaluator import _apply
from repro.smt.terms import BV
from repro.utils.bitops import mask, to_signed


def abstract_eval(
    term: BV,
    env: Mapping[str, AbstractValue],
    cache: "Optional[dict[int, AbstractValue]]" = None,
) -> AbstractValue:
    """Evaluate ``term`` to an abstract value under ``env``.

    A variable missing from ``env`` is an error — silently treating it as
    top would hide wiring bugs in the fixpoint engine.  ``cache`` (tid →
    value) may be shared across calls evaluating different terms under the
    *same* environment; callers that inspect per-node values (the lint
    overflow rule) read it back after the call.
    """
    if cache is None:
        cache = {}
    stack: list[tuple[BV, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node.tid in cache:
            continue
        if node.op == T.OP_CONST:
            cache[node.tid] = D.const(node.width, node.const_value())
            continue
        if node.op == T.OP_VAR:
            assert node.name is not None
            if node.name not in env:
                raise AbsintError(f"no abstract value for variable {node.name!r}")
            value = env[node.name]
            if value.width != node.width:
                raise AbsintError(
                    f"abstract width mismatch for {node.name!r}: "
                    f"{value.width} vs {node.width}"
                )
            cache[node.tid] = value
            continue
        if not expanded:
            stack.append((node, True))
            for arg in node.args:
                if arg.tid not in cache:
                    stack.append((arg, False))
            continue
        args = [cache[a.tid] for a in node.args]
        cache[node.tid] = transfer(node, args)
    return cache[term.tid]


def eval_transition(
    term: BV, env: Mapping[str, AbstractValue], depth: int = 8
) -> AbstractValue:
    """Evaluate a next-state term with branch-condition refinement.

    Hardware next-state functions are almost always an ITE spine
    (``ite(guard, update, hold)``); evaluating both branches under the
    unrefined environment loses the very facts the guard establishes
    (e.g. a saturating counter's ``count < limit``).  This wrapper walks
    the top-level ITE spine, assumes the condition true/false in each
    branch (refining variable abstractions through AND/NOT/EQ/ULT
    patterns), and joins the branch results.  Depth-limited; anything
    deeper falls back to plain :func:`abstract_eval`, which is always
    sound.
    """
    if depth <= 0 or term.op != T.OP_ITE:
        return abstract_eval(term, env)
    cond_term, then_term, else_term = term.args
    cond = abstract_eval(cond_term, env)
    if cond.is_bottom:
        return D.bottom(term.width)
    if cond.is_const:
        branch = then_term if cond.const_value() == 1 else else_term
        return eval_transition(branch, env, depth - 1)
    then_v = eval_transition(
        then_term, _assume(cond_term, 1, env), depth - 1
    )
    else_v = eval_transition(
        else_term, _assume(cond_term, 0, env), depth - 1
    )
    return D.join(then_v, else_v)


def _assume(
    cond: BV, value: int, env: Mapping[str, AbstractValue]
) -> dict[str, AbstractValue]:
    """The environment refined by assuming ``cond`` evaluates to ``value``.

    Only refinements that are *implied* by the assumption are applied (a
    meet with a derived constraint on a variable leaf), so the refined
    environment still over-approximates every concrete state satisfying
    the assumption.  Unrecognised shapes refine nothing.
    """
    refined = dict(env)
    _assume_into(cond, value, refined)
    return refined


def _meet_var(term: BV, value: AbstractValue, env: dict[str, AbstractValue]) -> None:
    if term.op == T.OP_VAR and term.name in env:
        env[term.name] = D.meet(env[term.name], value)


def _assume_into(cond: BV, value: int, env: dict[str, AbstractValue]) -> None:
    op = cond.op
    if op == T.OP_VAR:
        _meet_var(cond, D.const(1, value), env)
        return
    if op == T.OP_NOT:
        _assume_into(cond.args[0], 1 - value, env)
        return
    if op == T.OP_AND and value == 1:
        _assume_into(cond.args[0], 1, env)
        _assume_into(cond.args[1], 1, env)
        return
    if op == T.OP_OR and value == 0:
        _assume_into(cond.args[0], 0, env)
        _assume_into(cond.args[1], 0, env)
        return
    if op == T.OP_EQ and value == 1:
        a, b = cond.args
        va = abstract_eval(a, env)
        vb = abstract_eval(b, env)
        both = D.meet(va, vb)
        _meet_var(a, both, env)
        _meet_var(b, both, env)
        return
    if op == T.OP_ULT:
        a, b = cond.args
        w = a.width
        va = abstract_eval(a, env)
        vb = abstract_eval(b, env)
        if value == 1:
            # a < b: a <= b.hi - 1 and b >= a.lo + 1.
            _meet_var(a, D.from_interval(w, 0, vb.hi - 1), env)
            _meet_var(b, D.from_interval(w, va.lo + 1, mask(w)), env)
        else:
            # a >= b: a >= b.lo and b <= a.hi.
            _meet_var(a, D.from_interval(w, vb.lo, mask(w)), env)
            _meet_var(b, D.from_interval(w, 0, va.hi), env)
        return


def transfer(node: BV, args: list[AbstractValue]) -> AbstractValue:
    """Abstract semantics of one operator applied to abstract operands."""
    w = node.width
    if any(a.is_bottom for a in args):
        return D.bottom(w)
    if args and all(a.is_const for a in args):
        # Exact on constants, by construction: reuse the concrete operator
        # table so the two semantics cannot diverge.
        concrete = _apply(node, [a.const_value() for a in args])
        return D.const(w, concrete)

    op = node.op
    if op == T.OP_NOT:
        return _transfer_not(w, args[0])
    if op == T.OP_AND:
        return _transfer_and(w, args[0], args[1])
    if op == T.OP_OR:
        return _transfer_or(w, args[0], args[1])
    if op == T.OP_XOR:
        return _transfer_xor(w, args[0], args[1])
    if op == T.OP_ADD:
        return _transfer_add(w, args[0], args[1])
    if op == T.OP_SUB:
        return _transfer_sub(w, args[0], args[1])
    if op == T.OP_NEG:
        return _transfer_sub(w, D.const(w, 0), args[0])
    if op == T.OP_MUL:
        return _transfer_mul(w, args[0], args[1])
    if op == T.OP_EQ:
        return _transfer_eq(args[0], args[1])
    if op == T.OP_ULT:
        return _transfer_ult(args[0], args[1])
    if op == T.OP_SLT:
        return _transfer_slt(args[0], args[1])
    if op == T.OP_ITE:
        return _transfer_ite(args[0], args[1], args[2])
    if op == T.OP_CONCAT:
        return _transfer_concat(w, args[0], args[1])
    if op == T.OP_EXTRACT:
        high, low = node.params
        return _transfer_extract(w, args[0], high, low)
    if op in (T.OP_SHL, T.OP_LSHR, T.OP_ASHR):
        return _transfer_shift(op, w, args[0], args[1])
    raise AbsintError(f"no abstract transfer for operator {op!r}")


# ---------------------------------------------------------------------------
# bitwise
# ---------------------------------------------------------------------------


def _transfer_not(w: int, a: AbstractValue) -> AbstractValue:
    # ~x == mask - x, so the interval flips exactly.
    return D.make(
        w, a.known, ~a.bits & a.known & mask(w), mask(w) - a.hi, mask(w) - a.lo
    )


def _transfer_and(w: int, a: AbstractValue, b: AbstractValue) -> AbstractValue:
    known_zero = (a.known & ~a.bits) | (b.known & ~b.bits)
    known_one = a.known & b.known & a.bits & b.bits
    # x & y is no larger than either operand.
    return D.make(w, known_zero | known_one, known_one, 0, min(a.hi, b.hi))


def _transfer_or(w: int, a: AbstractValue, b: AbstractValue) -> AbstractValue:
    known_one = (a.known & a.bits) | (b.known & b.bits)
    known_zero = a.known & b.known & ~a.bits & ~b.bits
    # x | y sets no bit above either operand's highest possible bit, and
    # is at least as large as either operand.
    hi = mask(max(a.hi.bit_length(), b.hi.bit_length()))
    return D.make(w, known_zero | known_one, known_one, max(a.lo, b.lo), hi)


def _transfer_xor(w: int, a: AbstractValue, b: AbstractValue) -> AbstractValue:
    known = a.known & b.known
    hi = mask(max(a.hi.bit_length(), b.hi.bit_length()))
    return D.make(w, known, (a.bits ^ b.bits) & known, 0, hi)


# ---------------------------------------------------------------------------
# arithmetic
# ---------------------------------------------------------------------------


def _ripple_known(
    w: int, a: AbstractValue, b: AbstractValue, carry_in: int
) -> tuple[int, int]:
    """Known bits of ``a + b + carry_in`` by ternary ripple-carry.

    The carry into each position is tracked as known/unknown; a position's
    sum bit is known only when both operand bits and the incoming carry
    are.
    """
    known = 0
    bits = 0
    carry, carry_known = carry_in, True
    for i in range(w):
        ka = (a.known >> i) & 1
        kb = (b.known >> i) & 1
        va = (a.bits >> i) & 1
        vb = (b.bits >> i) & 1
        if ka and kb:
            if carry_known:
                total = va + vb + carry
                bits |= (total & 1) << i
                known |= 1 << i
                carry = total >> 1
            elif va == vb:
                # majority(v, v, c) == v: equal operand bits pin the carry
                # out even though the sum bit stays unknown.
                carry, carry_known = va, True
            # Unequal known bits just propagate the unknown carry.
        elif carry_known and ((ka and va == carry) or (kb and vb == carry)):
            # majority(v, x, v) == v: a known operand bit equal to the
            # carry keeps the carry out, with an unknown sum bit.
            pass
        else:
            carry_known = False
    return known, bits


def _transfer_add(w: int, a: AbstractValue, b: AbstractValue) -> AbstractValue:
    known, bits = _ripple_known(w, a, b, 0)
    lo_sum = a.lo + b.lo
    hi_sum = a.hi + b.hi
    if hi_sum <= mask(w):
        lo, hi = lo_sum, hi_sum
    elif lo_sum > mask(w):
        # Every sum wraps exactly once (operands are < 2**w each).
        lo, hi = lo_sum - mask(w) - 1, hi_sum - mask(w) - 1
    else:
        lo, hi = 0, mask(w)
    return D.make(w, known, bits, lo, hi)


def _transfer_sub(w: int, a: AbstractValue, b: AbstractValue) -> AbstractValue:
    # a - b == a + ~b + 1 for the bit-level component.
    not_b = _transfer_not(w, b)
    known, bits = _ripple_known(w, a, not_b, 1)
    if a.lo >= b.hi:
        lo, hi = a.lo - b.hi, a.hi - b.lo
    elif a.hi < b.lo:
        # Every difference is negative, so every result wraps exactly once.
        lo, hi = a.lo - b.hi + mask(w) + 1, a.hi - b.lo + mask(w) + 1
    else:
        lo, hi = 0, mask(w)
    return D.make(w, known, bits, lo, hi)


def _trailing_known(a: AbstractValue) -> int:
    """Length of the run of known bits starting at bit 0."""
    count = 0
    while count < a.width and (a.known >> count) & 1:
        count += 1
    return count


def _transfer_mul(w: int, a: AbstractValue, b: AbstractValue) -> AbstractValue:
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            c = x.const_value()
            if c == 0:
                return D.const(w, 0)
            if c == 1:
                return y
            if c & (c - 1) == 0:
                # Multiplication by a power of two is a left shift.
                return _shift_by_const(T.OP_SHL, w, y, c.bit_length() - 1)
    # The low k product bits depend only on the low k operand bits.
    k = min(_trailing_known(a), _trailing_known(b))
    known = mask(k)
    bits = ((a.bits & mask(k)) * (b.bits & mask(k))) & mask(k)
    hi_prod = a.hi * b.hi
    if hi_prod <= mask(w):
        lo, hi = a.lo * b.lo, hi_prod
    else:
        lo, hi = 0, mask(w)
    return D.make(w, known, bits, lo, hi)


# ---------------------------------------------------------------------------
# comparisons (width-1 results)
# ---------------------------------------------------------------------------


def _bit_conflict(a: AbstractValue, b: AbstractValue) -> bool:
    common = a.known & b.known
    return (a.bits & common) != (b.bits & common)


def _transfer_eq(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a.hi < b.lo or b.hi < a.lo or _bit_conflict(a, b):
        return D.const(1, 0)
    if a.is_const and b.is_const and a.const_value() == b.const_value():
        return D.const(1, 1)
    return D.top(1)


def _transfer_ult(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a.hi < b.lo:
        return D.const(1, 1)
    if a.lo >= b.hi:
        return D.const(1, 0)
    return D.top(1)


def _signed_range(a: AbstractValue) -> tuple[int, int]:
    """Signed min/max of the values represented by ``a``."""
    w = a.width
    half = 1 << (w - 1)
    lows: list[int] = []
    highs: list[int] = []
    # Non-negative candidates: [lo, hi] ∩ [0, half-1].
    if a.lo < half:
        lows.append(a.lo)
        highs.append(min(a.hi, half - 1))
    # Negative candidates: [lo, hi] ∩ [half, mask] shifted down by 2**w.
    if a.hi >= half:
        lows.append(max(a.lo, half) - (half << 1))
        highs.append(a.hi - (half << 1))
    return min(lows), max(highs)


def _transfer_slt(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    amin, amax = _signed_range(a)
    bmin, bmax = _signed_range(b)
    if amax < bmin:
        return D.const(1, 1)
    if amin >= bmax:
        return D.const(1, 0)
    return D.top(1)


# ---------------------------------------------------------------------------
# structural
# ---------------------------------------------------------------------------


def _transfer_ite(
    cond: AbstractValue, then_v: AbstractValue, else_v: AbstractValue
) -> AbstractValue:
    if cond.is_const:
        return then_v if cond.const_value() == 1 else else_v
    return D.join(then_v, else_v)


def _transfer_concat(
    w: int, high: AbstractValue, low: AbstractValue
) -> AbstractValue:
    lw = low.width
    return D.make(
        w,
        (high.known << lw) | low.known,
        (high.bits << lw) | low.bits,
        (high.lo << lw) + low.lo,
        (high.hi << lw) + low.hi,
    )


def _transfer_extract(
    w: int, a: AbstractValue, high: int, low: int
) -> AbstractValue:
    known = (a.known >> low) & mask(w)
    bits = (a.bits >> low) & mask(w)
    if low == 0 and a.hi <= mask(w):
        lo, hi = a.lo, a.hi
    elif (a.lo >> low) == (a.hi >> low) and high == a.width - 1:
        # The truncated-away low bits are the only varying part.
        lo = hi = (a.lo >> low) & mask(w)
    else:
        lo, hi = 0, mask(w)
    return D.make(w, known, bits, lo, hi)


# ---------------------------------------------------------------------------
# shifts
# ---------------------------------------------------------------------------


def _shift_by_const(op: str, w: int, a: AbstractValue, amt: int) -> AbstractValue:
    if op == T.OP_SHL:
        if amt >= w:
            return D.const(w, 0)
        known = ((a.known << amt) | mask(amt)) & mask(w)
        bits = (a.bits << amt) & mask(w)
        if a.hi << amt <= mask(w):
            lo, hi = a.lo << amt, a.hi << amt
        else:
            lo, hi = 0, mask(w)
        return D.make(w, known, bits, lo, hi)
    if op == T.OP_LSHR:
        if amt >= w:
            return D.const(w, 0)
        # The vacated high bits are known zero.
        known = (a.known >> amt) | (mask(amt) << (w - amt))
        return D.make(w, known & mask(w), a.bits >> amt, a.lo >> amt, a.hi >> amt)
    # ASHR: the evaluator clamps the amount to width-1 and sign-extends.
    amt = min(amt, w - 1)
    msb = 1 << (w - 1)
    if a.known & msb:
        sign = 1 if a.bits & msb else 0
        fill = (mask(amt) << (w - amt)) & mask(w)
        known = ((a.known >> amt) | fill) & mask(w)
        bits = ((a.bits >> amt) | (fill if sign else 0)) & mask(w)
        if sign:
            lo, hi = 0, mask(w)
            if not a.is_bottom:
                lo = (to_signed(a.lo | msb, w) >> amt) & mask(w)
                hi = (to_signed(a.hi | msb, w) >> amt) & mask(w)
                if lo > hi:
                    lo, hi = 0, mask(w)
        else:
            lo, hi = a.lo >> amt, a.hi >> amt
        return D.make(w, known, bits, lo, hi)
    known = a.known >> amt
    # Without the sign the shifted-in bits are unknown; drop any stale
    # known bits in the fill region.
    known &= mask(w - amt)
    return D.make(w, known, a.bits >> amt & known, 0, mask(w))


def _transfer_shift(
    op: str, w: int, a: AbstractValue, amount: AbstractValue
) -> AbstractValue:
    if amount.is_const:
        return _shift_by_const(op, w, a, amount.const_value())
    # Join the results over every feasible shift amount.  Amounts >= w all
    # behave alike (zero for SHL/LSHR, clamp to w-1 for ASHR), so at most
    # w + 1 cases matter.
    result: AbstractValue | None = None
    for amt in range(w):
        if amount.contains(amt):
            shifted = _shift_by_const(op, w, a, amt)
            result = shifted if result is None else D.join(result, shifted)
    if amount.hi >= w:
        overflow = _shift_by_const(op, w, a, w)
        result = overflow if result is None else D.join(result, overflow)
    return result if result is not None else D.bottom(w)
