"""Exporting fixpoint facts to the solvers: terms, cubes, folds, oracles.

Four consumers, four shapes:

* :func:`strengthening_terms` — width-1 invariant terms over the state
  symbols, conjoined to k-induction step frames (and usable anywhere a
  sound reachable-state constraint helps);
* :func:`pdr_seed_cubes` — single-literal blocked cubes (one per proven
  latch bit) offered to ``PdrEngine(seed_lemmas=...)``, which re-checks
  consecution before admitting any of them;
* :func:`fold_system` — a rewritten :class:`TransitionSystem` with
  proven-constant latches removed and partially-known latches narrowed to
  their unknown bits, plus the assembly terms needed to rebuild original
  traces;
* :func:`validate_by_simulation` — the independent soundness oracle:
  every fact must subsume bounded random concrete runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.absint.domains import AbstractValue
from repro.absint.fixpoint import Analysis
from repro.errors import AbsintError
from repro.smt import terms as T
from repro.smt.evaluator import evaluate, free_variables, substitute
from repro.smt.terms import BV
from repro.ts.system import TransitionSystem
from repro.utils.bitops import mask


@dataclass(frozen=True)
class LatchFact:
    """One latch's non-trivial reachable-value abstraction."""

    name: str
    width: int
    value: AbstractValue

    def describe(self) -> str:
        return f"{self.name}: {self.value.describe()}"


def latch_facts(ts: TransitionSystem, analysis: Analysis) -> list[LatchFact]:
    """Facts for every latch whose abstraction is not top."""
    facts = []
    for s in ts.states:
        value = analysis.latches[s.name]
        if not value.is_top and not value.is_bottom:
            facts.append(LatchFact(name=s.name, width=s.width, value=value))
    return facts


def strengthening_terms(ts: TransitionSystem, analysis: Analysis) -> list[BV]:
    """Width-1 invariant terms over the state symbols.

    Each term holds in every reachable state (it is implied by the
    fixpoint), so conjoining it to a k-induction step frame or a BMC
    query can only remove unreachable assignments — verdicts and
    counterexamples are preserved.
    """
    terms: list[BV] = []
    for fact in latch_facts(ts, analysis):
        symbol = ts.state_symbol(fact.name)
        v = fact.value
        w = fact.width
        if v.is_const:
            terms.append(T.bv_eq(symbol, T.bv_const(v.const_value(), w)))
            continue
        if v.known:
            masked = T.bv_and(symbol, T.bv_const(v.known, w))
            terms.append(T.bv_eq(masked, T.bv_const(v.bits, w)))
        if v.hi < mask(w):
            terms.append(T.bv_ule(symbol, T.bv_const(v.hi, w)))
        if v.lo > 0:
            terms.append(T.bv_ule(T.bv_const(v.lo, w), symbol))
    return terms


def pdr_seed_cubes(
    ts: TransitionSystem, analysis: Analysis
) -> list[tuple[tuple[str, int, bool], ...]]:
    """Single-literal blocked-cube candidates, one per proven latch bit.

    A latch bit known to be ``v`` in every reachable state means the cube
    ``(bit == not v)`` is unreachable — exactly what PDR's frame-∞ blocks.
    These are *candidates*: the engine still consecution-checks them, so a
    bug here can cost completeness, never soundness.
    """
    cubes: list[tuple[tuple[str, int, bool], ...]] = []
    for fact in latch_facts(ts, analysis):
        v = fact.value
        for i in range(fact.width):
            if (v.known >> i) & 1:
                bad = not bool((v.bits >> i) & 1)
                cubes.append(((fact.name, i, bad),))
    return cubes


# ---------------------------------------------------------------------------
# pre-encoding fold
# ---------------------------------------------------------------------------


@dataclass
class AbsintFold:
    """A folded system plus the map back to the original state space."""

    ts: TransitionSystem
    #: Original latch name -> equivalent term over the folded system's
    #: symbols (the original symbol itself for untouched latches).
    state_terms: dict[str, BV] = field(default_factory=dict)
    #: Latches removed entirely (proven constant).
    states_folded: int = 0
    #: Proven-constant bits eliminated (includes removed latches' bits).
    bits_folded: int = 0


def _narrowed_name(name: str, value: AbstractValue) -> str:
    return f"{name}!ai{value.known:x}"


def _unknown_positions(value: AbstractValue) -> list[int]:
    return [i for i in range(value.width) if not (value.known >> i) & 1]


def _assemble(value: AbstractValue, narrow: BV) -> BV:
    """The original-width term rebuilding a latch from its unknown bits."""
    w = value.width
    expr = T.bv_const(value.bits, w)
    for j, pos in enumerate(_unknown_positions(value)):
        bit = T.bv_extract(narrow, j, j)
        expr = T.bv_or(expr, T.bv_shl(T.bv_zext(bit, w), T.bv_const(pos, w)))
    return expr


def _compress(term: BV, positions: list[int]) -> BV:
    """Extract ``positions`` (ascending) of ``term`` into one narrow word."""
    expr = T.bv_extract(term, positions[0], positions[0])
    for pos in positions[1:]:
        expr = T.bv_concat(T.bv_extract(term, pos, pos), expr)
    return expr


def fold_system(ts: TransitionSystem, analysis: Analysis) -> AbsintFold | None:
    """Fold proven-constant latches and bits out of ``ts``.

    Returns ``None`` when the analysis proves nothing foldable.  The fold
    preserves the reachable behaviour projected onto the surviving bits
    (facts are invariants, so fixing a proven bit is frame-wise
    equisatisfiable), hence verdicts and counterexample frames are
    unchanged — which the differential tests and benchmark gate on.
    """
    const_latches: dict[str, AbstractValue] = {}
    narrowed: dict[str, AbstractValue] = {}
    for s in ts.states:
        value = analysis.latches[s.name]
        if value.is_bottom:
            continue
        if value.is_const and s.init is not None:
            const_latches[s.name] = value
        elif 0 < value.width - value.unknown_count and not value.is_const:
            if s.init is not None:
                narrowed[s.name] = value
    if not const_latches and not narrowed:
        return None

    folded = TransitionSystem(name=f"{ts.name}!absint")
    for inp in ts.inputs:
        folded.add_input(inp.name, inp.width)

    # Replacement terms for every original latch symbol.
    replacement: dict[BV, BV] = {}
    state_terms: dict[str, BV] = {}
    narrow_symbols: dict[str, BV] = {}
    for s in ts.states:
        if s.name in const_latches:
            value = const_latches[s.name]
            term = T.bv_const(value.const_value(), s.width)
            replacement[s.symbol] = term
            state_terms[s.name] = term
        elif s.name in narrowed:
            value = narrowed[s.name]
            narrow = folded.add_state(
                _narrowed_name(s.name, value), value.unknown_count
            )
            narrow_symbols[s.name] = narrow
            term = _assemble(value, narrow)
            replacement[s.symbol] = term
            state_terms[s.name] = term
        else:
            folded.add_state(s.name, s.width)
            state_terms[s.name] = s.symbol

    def rewrite(term: BV) -> BV:
        return substitute(term, replacement) if replacement else term

    for s in ts.states:
        if s.name in const_latches:
            continue
        if s.name in narrowed:
            positions = _unknown_positions(narrowed[s.name])
            target = narrow_symbols[s.name]
            if s.init is not None:
                folded.set_init(target, _compress(rewrite(s.init), positions))
            if s.next is not None:
                folded.set_next(target, _compress(rewrite(s.next), positions))
        else:
            if s.init is not None:
                folded.set_init(s.name, rewrite(s.init))
            if s.next is not None:
                folded.set_next(s.name, rewrite(s.next))

    for constraint in ts.constraints:
        folded.add_constraint(rewrite(constraint))
    for name, term in ts.properties.items():
        folded.add_property(name, rewrite(term))

    bits = sum(v.width for v in const_latches.values())
    bits += sum(v.width - v.unknown_count for v in narrowed.values())
    return AbsintFold(
        ts=folded,
        state_terms=state_terms,
        states_folded=len(const_latches),
        bits_folded=bits,
    )


# ---------------------------------------------------------------------------
# simulation oracle
# ---------------------------------------------------------------------------


def validate_by_simulation(
    ts: TransitionSystem,
    analysis: Analysis,
    *,
    runs: int = 32,
    steps: int = 12,
    seed: int = 0,
) -> int:
    """Cross-check every fact against bounded random concrete simulation.

    Drives ``runs`` random executions for ``steps`` cycles each (random
    inputs every cycle, random values for unconstrained latches) and
    checks that each latch's abstract value contains its concrete value
    and that abstractly-decided properties match their concrete
    evaluation.  Returns the number of containment checks performed;
    raises :class:`AbsintError` on the first violation — a violation is
    an engine soundness bug, never a property of the design.
    """
    rng = random.Random(seed)
    checks = 0
    declared = {s.name for s in ts.states} | {i.name for i in ts.inputs}
    aux: dict[str, int] = {}
    all_terms = list(ts.constraints) + list(ts.properties.values())
    for s in ts.states:
        all_terms.extend(t for t in (s.init, s.next) if t is not None)
    for term in all_terms:
        for var in free_variables(term):
            if var.name not in declared:
                aux[var.name] = var.width
    for _ in range(runs):
        env: dict[str, int] = {}
        # Undeclared auxiliary symbols are rigid: one random value per run.
        for name, width in aux.items():
            env[name] = rng.getrandbits(width)
        for inp in ts.inputs:
            env[inp.name] = rng.getrandbits(inp.width)
        for s in ts.states:
            env[s.name] = rng.getrandbits(s.width)
        # Two passes so init terms referencing other latches settle.
        for _ in range(2):
            for s in ts.states:
                if s.init is not None:
                    env[s.name] = evaluate(s.init, env)
        for step in range(steps):
            for s in ts.states:
                value = analysis.latches[s.name]
                if not value.contains(env[s.name]):
                    raise AbsintError(
                        f"soundness violation: latch {s.name!r} = "
                        f"{env[s.name]:#x} at step {step} escapes "
                        f"{value.describe()}"
                    )
                checks += 1
            for pname, term in ts.properties.items():
                abstract = analysis.properties[pname]
                if abstract.is_const:
                    if evaluate(term, env) != abstract.const_value():
                        raise AbsintError(
                            f"soundness violation: property {pname!r} "
                            f"disagrees with abstract value "
                            f"{abstract.describe()} at step {step}"
                        )
                    checks += 1
            stepped = {}
            for s in ts.states:
                if s.next is not None:
                    stepped[s.name] = evaluate(s.next, env)
                else:
                    stepped[s.name] = rng.getrandbits(s.width)
            for inp in ts.inputs:
                env[inp.name] = rng.getrandbits(inp.width)
            env.update(stepped)
    return checks
