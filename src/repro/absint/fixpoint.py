"""Reachable-state fixpoint over a transition system.

:func:`analyze` computes, per latch, an :class:`AbstractValue` that
over-approximates every value the latch takes in any reachable state
(under *unconstrained* inputs — global constraints are deliberately
ignored, which only widens the result and keeps plain random simulation a
valid soundness oracle).  The iteration is a standard worklist least
fixpoint from the abstract initial state, with delayed interval widening
so counter-like latches converge in a bounded number of steps, followed
by a greatest-fixpoint constancy pass (the algorithm behind lint's
original ``seq-const-latch`` rule) so the engine-backed rule is never
weaker than the syntactic one it replaces.

Results are cached per ``TransitionSystem`` identity and invalidated by a
term-id fingerprint, so lint rules, the encoder, PDR seeding and the BMC
strengthening pass all share one analysis per design.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from collections import deque

from repro.absint import domains as D
from repro.absint.domains import AbstractValue
from repro.absint.transfer import abstract_eval, eval_transition
from repro.errors import AbsintError
from repro.smt import terms as T
from repro.smt.evaluator import free_variables, substitute
from repro.ts.system import TransitionSystem

#: Number of joins a latch absorbs before interval widening kicks in.
DEFAULT_WIDEN_DELAY = 8


@dataclass
class Analysis:
    """The fixpoint result for one transition system."""

    #: Per-latch over-approximation of every reachable value.
    latches: dict[str, AbstractValue]
    #: Inputs are unconstrained: always top, kept for environment building.
    inputs: dict[str, AbstractValue]
    #: Abstract value of each property term in the final environment
    #: (const 1 means the property provably holds in the abstraction).
    properties: dict[str, AbstractValue]
    #: Latches proven stuck at one concrete value, with that value.
    seq_const: dict[str, int] = field(default_factory=dict)
    iterations: int = 0
    widenings: int = 0

    def env(self) -> dict[str, AbstractValue]:
        """The variable environment for :func:`abstract_eval` calls."""
        return {**self.inputs, **self.latches}

    def value_of(self, name: str) -> AbstractValue:
        if name in self.latches:
            return self.latches[name]
        if name in self.inputs:
            return self.inputs[name]
        raise AbsintError(f"unknown symbol {name!r} in analysis")

    def fact_count(self) -> int:
        """Number of latches with a non-trivial (non-top) abstraction."""
        return sum(1 for v in self.latches.values() if not v.is_top)

    def known_bit_count(self) -> int:
        """Total proven-constant latch bits across the design."""
        return sum(
            v.width - v.unknown_count
            for v in self.latches.values()
            if not v.is_bottom
        )


# Cache one analysis per TransitionSystem object, invalidated whenever the
# system's term structure changes (systems are mutable builders).
_CACHE: "weakref.WeakKeyDictionary[TransitionSystem, tuple[tuple, Analysis]]"
_CACHE = weakref.WeakKeyDictionary()


def _fingerprint(ts: TransitionSystem) -> tuple:
    states = tuple(
        (
            s.name,
            s.width,
            s.init.tid if s.init is not None else -1,
            s.next.tid if s.next is not None else -1,
        )
        for s in ts.states
    )
    inputs = tuple((i.name, i.width) for i in ts.inputs)
    props = tuple((name, term.tid) for name, term in ts.properties.items())
    constraints = tuple(c.tid for c in ts.constraints)
    return (states, inputs, props, constraints)


def analyze(
    ts: TransitionSystem, *, widen_delay: int = DEFAULT_WIDEN_DELAY
) -> Analysis:
    """The (cached) abstract reachability analysis of ``ts``."""
    if widen_delay < 1:
        raise AbsintError(f"widen_delay must be positive, got {widen_delay}")
    fingerprint = _fingerprint(ts)
    cached = _CACHE.get(ts)
    if cached is not None and cached[0] == fingerprint and widen_delay == DEFAULT_WIDEN_DELAY:
        return cached[1]
    analysis = _run(ts, widen_delay)
    if widen_delay == DEFAULT_WIDEN_DELAY:
        _CACHE[ts] = (fingerprint, analysis)
    return analysis


def _run(ts: TransitionSystem, widen_delay: int) -> Analysis:
    state_names = {s.name for s in ts.states}
    env: dict[str, AbstractValue] = {
        inp.name: D.top(inp.width) for inp in ts.inputs
    }
    # Terms may reference auxiliary free variables that were never declared
    # (e.g. fresh nondeterministic-init symbols introduced by the QED
    # transform).  They are unconstrained, so top is their exact value.
    all_terms = list(ts.constraints) + list(ts.properties.values())
    for s in ts.states:
        all_terms.extend(t for t in (s.init, s.next) if t is not None)
    for term in all_terms:
        for var in free_variables(term):
            if var.name not in state_names and var.name not in env:
                env[var.name] = D.top(var.width)
    inputs = dict(env)

    # Abstract initial state.  Init terms may reference other symbols (the
    # lint init-cycle rule polices abuse); evaluating them under an all-top
    # state environment stays sound because top includes whatever those
    # symbols actually hold at reset.
    init_env = dict(env)
    for s in ts.states:
        init_env[s.name] = D.top(s.width)
    for s in ts.states:
        if s.next is None or s.init is None:
            # A latch without a next function is input-like after frame 0;
            # only top covers it.  Without an init, frame 0 is free too.
            env[s.name] = D.top(s.width)
        else:
            env[s.name] = abstract_eval(s.init, init_env)

    # Who must be revisited when a latch's value grows.
    dependents: dict[str, set[str]] = {name: set() for name in state_names}
    transition: dict[str, T.BV] = {}
    for s in ts.states:
        if s.next is None:
            continue
        transition[s.name] = s.next
        for var in free_variables(s.next):
            if var.name in state_names:
                dependents[var.name].add(s.name)

    worklist = deque(sorted(transition))
    queued = set(worklist)
    updates: dict[str, int] = {name: 0 for name in transition}
    iterations = 0
    widenings = 0
    # Backstop only: each component's chain height is linear in the width,
    # and widening bounds the interval changes by a constant.
    caps = {
        name: widen_delay + 4 * ts.state_symbol(name).width + 16
        for name in transition
    }

    while worklist:
        iterations += 1
        name = worklist.popleft()
        queued.discard(name)
        current = env[name]
        stepped = eval_transition(transition[name], env)
        joined = D.join(current, stepped)
        if joined == current:
            continue
        updates[name] += 1
        if updates[name] > widen_delay:
            joined = D.widen(current, joined)
            widenings += 1
            if joined == current:
                continue
        if updates[name] > caps[name]:
            raise AbsintError(
                f"fixpoint for latch {name!r} failed to converge after "
                f"{updates[name]} updates"
            )
        env[name] = joined
        for dep in dependents[name]:
            if dep not in queued:
                worklist.append(dep)
                queued.add(dep)

    latches = {s.name: env[s.name] for s in ts.states}
    _constancy_pass(ts, latches)
    env.update(latches)
    properties = {
        name: abstract_eval(term, env) for name, term in ts.properties.items()
    }
    seq_const = {
        name: value.const_value()
        for name, value in latches.items()
        if value.is_const
    }
    return Analysis(
        latches=latches,
        inputs=inputs,
        properties=properties,
        seq_const=seq_const,
        iterations=iterations,
        widenings=widenings,
    )


def _constancy_pass(ts: TransitionSystem, latches: dict[str, AbstractValue]) -> None:
    """Greatest-fixpoint constancy refinement, in place.

    Assume every const-init latch is stuck at its init simultaneously and
    discard assumptions whose next-state term does not fold back to the
    assumed value; the surviving set is a genuine invariant.  This is the
    original lint ``seq-const-latch`` algorithm, so the engine-backed rule
    subsumes it by construction — it catches mutually-dependent stuck
    latches the forward iteration can lose to input joins.
    """
    # Already-proven constants participate as substitution base.
    base: dict[str, int] = {
        name: value.const_value()
        for name, value in latches.items()
        if value.is_const
    }
    next_terms = {s.name: s.next for s in ts.states if s.next is not None}
    candidates: dict[str, int] = {}
    for s in ts.states:
        if s.name in base or s.next is None:
            continue
        if s.init is not None and s.init.is_const:
            candidates[s.name] = s.init.const_value()
    while candidates:
        mapping = {
            ts.state_symbol(name): T.bv_const(value, ts.state_symbol(name).width)
            for name, value in {**base, **candidates}.items()
        }
        dropped = []
        for name, value in candidates.items():
            folded = substitute(next_terms[name], mapping)
            if not (folded.is_const and folded.const_value() == value):
                dropped.append(name)
        if not dropped:
            break
        for name in dropped:
            del candidates[name]
    for name, value in candidates.items():
        latches[name] = D.const(ts.state_symbol(name).width, value)
