"""Command-line front end: ``python -m repro.absint``.

Targets, combinable in one invocation (mirroring ``python -m repro.lint``):

* positional paths — ``.btor2`` files, parsed and analyzed;
* ``--design NAME`` (repeatable, or ``all``) — entries of the built-in
  design gallery (the PDR designs, clean and buggy variants);
* ``--zoo-sample N`` — N generated bug-zoo instances (seeded, reproducible
  via ``--zoo-seed``), each built and analyzed;
* ``--validate N`` — additionally cross-check every fact against N random
  concrete simulation runs (exit 2 on a soundness violation).

Exit status: 0 on success, 2 on usage/parse/soundness errors.

Examples::

    python -m repro.absint sepe_sqed_model.btor2
    python -m repro.absint --design all --json
    python -m repro.absint --zoo-sample 20 --zoo-seed 7 --validate 25
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.absint.facts import latch_facts, validate_by_simulation
from repro.absint.fixpoint import Analysis, analyze
from repro.errors import ReproError
from repro.ts.system import TransitionSystem


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.absint",
        description="Abstract-interpretation reachability analysis over "
        "transition systems.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="BTOR2 files to parse and analyze",
    )
    parser.add_argument(
        "--design",
        action="append",
        default=[],
        metavar="NAME",
        help="analyze a built-in design ('all' for the whole gallery; "
        "repeatable)",
    )
    parser.add_argument(
        "--zoo-sample",
        type=int,
        default=0,
        metavar="N",
        help="analyze N generated bug-zoo instances",
    )
    parser.add_argument(
        "--zoo-seed",
        type=int,
        default=0,
        metavar="S",
        help="base seed for --zoo-sample (default 0)",
    )
    parser.add_argument(
        "--validate",
        type=int,
        default=0,
        metavar="N",
        help="cross-check facts against N random simulation runs per "
        "target (soundness oracle)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a JSON report instead of text",
    )
    return parser


def _target_summary(
    ts: TransitionSystem, analysis: Analysis, validated_checks: Optional[int]
) -> dict:
    summary = {
        "latches": len(ts.states),
        "facts": analysis.fact_count(),
        "known_bits": analysis.known_bit_count(),
        "state_bits": ts.num_state_bits(),
        "seq_const_latches": sorted(analysis.seq_const),
        "iterations": analysis.iterations,
        "widenings": analysis.widenings,
        "values": {
            fact.name: fact.value.describe()
            for fact in latch_facts(ts, analysis)
        },
        "properties": {
            name: value.describe()
            for name, value in analysis.properties.items()
        },
    }
    if validated_checks is not None:
        summary["simulation_checks"] = validated_checks
    return summary


def main(argv: Optional[list[str]] = None) -> int:
    args = _parser().parse_args(argv)
    from repro.lint.cli import _gallery, _zoo_targets

    gallery = _gallery()
    try:
        targets: list[tuple[str, TransitionSystem]] = []
        for path_text in args.targets:
            path = Path(path_text)
            from repro.btor.parser import parse_btor2
            from repro.qed.module import reserve_model_prefixes

            ts = parse_btor2(path.read_text(), name=path.stem)
            reserve_model_prefixes(
                [s.name for s in ts.states] + [i.name for i in ts.inputs]
            )
            targets.append((path_text, ts))
        design_names = list(args.design)
        if "all" in design_names:
            design_names = sorted(gallery)
        for name in design_names:
            if name not in gallery:
                print(
                    f"unknown design {name!r}; available: "
                    + ", ".join(sorted(gallery)),
                    file=sys.stderr,
                )
                return 2
            targets.append((f"design:{name}", gallery[name]()))
        if args.zoo_sample:
            targets.extend(_zoo_targets(args.zoo_sample, args.zoo_seed))

        if not targets:
            print(
                "nothing to analyze (pass files, --design or --zoo-sample)",
                file=sys.stderr,
            )
            return 2

        results: list[tuple[str, TransitionSystem, Analysis, Optional[int]]] = []
        for name, ts in targets:
            analysis = analyze(ts)
            checks: Optional[int] = None
            if args.validate:
                checks = validate_by_simulation(ts, analysis, runs=args.validate)
            results.append((name, ts, analysis, checks))
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.as_json:
        payload = {
            "targets": {
                name: _target_summary(ts, analysis, checks)
                for name, ts, analysis, checks in results
            },
            "total_facts": sum(a.fact_count() for _, _, a, _ in results),
            "total_known_bits": sum(
                a.known_bit_count() for _, _, a, _ in results
            ),
        }
        print(json.dumps(payload, indent=2))
    else:
        total_facts = 0
        for name, ts, analysis, checks in results:
            facts = latch_facts(ts, analysis)
            total_facts += len(facts)
            if facts:
                print(f"== {name}: {len(facts)} fact(s)")
                for fact in facts:
                    print(f"   {fact.describe()}")
            else:
                print(f"== {name}: no facts")
            for pname, value in analysis.properties.items():
                if value.is_const:
                    verdict = "holds" if value.const_value() == 1 else "fails"
                    print(f"   property {pname}: abstractly {verdict}")
            if checks is not None:
                print(f"   simulation: {checks} containment checks passed")
        print(f"-- {len(results)} target(s): {total_facts} fact(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
