"""Word-level abstract interpretation over transition systems.

A lightweight static reachability analysis in the ternary-simulation
tradition of hardware model checkers: per latch, a reduced product of
known-bits, constancy and interval domains over-approximates every
reachable value.  The facts power four layers — lint rules, pre-encoding
folding in the BMC pipeline (``REPRO_ABSINT``), PDR frame-∞ seed lemmas
(consecution-checked on admission) and k-induction step strengthening —
and every fact is cross-checked against bounded random simulation.
"""

from repro.absint.domains import AbstractValue
from repro.absint.facts import (
    AbsintFold,
    LatchFact,
    fold_system,
    latch_facts,
    pdr_seed_cubes,
    strengthening_terms,
    validate_by_simulation,
)
from repro.absint.fixpoint import Analysis, analyze

__all__ = [
    "AbstractValue",
    "AbsintFold",
    "Analysis",
    "LatchFact",
    "analyze",
    "fold_system",
    "latch_facts",
    "pdr_seed_cubes",
    "strengthening_terms",
    "validate_by_simulation",
]
