"""Conflict-driven clause-learning (CDCL) SAT solver.

The implementation follows the classic MiniSat recipe:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS variable activities with phase saving,
* Luby-sequence restarts,
* learned-clause database reduction based on activity.

It also supports solving under assumptions, which the incremental users
(CEGIS, BMC and IC3/PDR) rely on.  An UNSAT answer under assumptions
carries a *failed-assumption core* (MiniSat's ``analyzeFinal``): the subset
of assumptions that already forces the conflict.  Assumption-UNSAT leaves
the solver reusable; only a root-level (assumption-free) contradiction
latches the instance unsatisfiable for good.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import SatError
from repro.sat.cnf import CNF
from repro.sat.sanitize import (
    check_reference_invariants,
    check_reference_learned,
    check_reference_model,
    check_reference_reasons,
    check_reference_trail,
    check_reference_watches,
    resolve_sanitize,
)

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1

#: LBD retention tiers (glucose-style).  Core clauses (LBD <= _LBD_CORE)
#: are never deleted; mid clauses (LBD <= _LBD_MID) are only deleted after
#: every local clause; local clauses go least-active-first.
_LBD_CORE = 2
_LBD_MID = 6


@dataclass
class SolverStats:
    """Counters describing the work done by a single :class:`SatSolver`."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    max_decision_level: int = 0
    #: Sum of LBD scores over stored learned clauses (avg = lbd_sum /
    #: learned_clauses); low averages mean high-quality conflict clauses.
    lbd_sum: int = 0
    #: Literals removed from learned clauses by conflict-clause minimisation.
    minimized_literals: int = 0
    #: Decisions whose polarity came from a saved (non-default) phase.
    saved_phase_hits: int = 0

    def copy(self) -> "SolverStats":
        """A detached snapshot of the counters."""
        return dataclasses.replace(self)

    def since(self, earlier: "SolverStats") -> "SolverStats":
        """Counters accumulated since the ``earlier`` snapshot was taken.

        ``max_decision_level`` is a high-water mark rather than a counter, so
        the current value is kept as-is.
        """
        return SolverStats(
            decisions=self.decisions - earlier.decisions,
            propagations=self.propagations - earlier.propagations,
            conflicts=self.conflicts - earlier.conflicts,
            restarts=self.restarts - earlier.restarts,
            learned_clauses=self.learned_clauses - earlier.learned_clauses,
            max_decision_level=self.max_decision_level,
            lbd_sum=self.lbd_sum - earlier.lbd_sum,
            minimized_literals=self.minimized_literals - earlier.minimized_literals,
            saved_phase_hits=self.saved_phase_hits - earlier.saved_phase_hits,
        )

    def merge(self, other: "SolverStats") -> None:
        """Accumulate ``other`` into this record (in place)."""
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.conflicts += other.conflicts
        self.restarts += other.restarts
        self.learned_clauses += other.learned_clauses
        self.max_decision_level = max(self.max_decision_level, other.max_decision_level)
        self.lbd_sum += other.lbd_sum
        self.minimized_literals += other.minimized_literals
        self.saved_phase_hits += other.saved_phase_hits


@dataclass
class SatResult:
    """Outcome of a SAT query.

    ``satisfiable`` is ``True``/``False`` for a decided query and ``None``
    if the solver hit its conflict budget.  When satisfiable, ``model`` maps
    every variable index to a boolean.  ``stats`` is a *detached snapshot*
    of the solver's cumulative counters at the time the result was built:
    later calls on the same solver instance do not mutate a stored result.

    For UNSAT answers ``core`` holds the *failed-assumption core*: a subset
    of the passed assumption literals whose conjunction already makes the
    formula unsatisfiable.  An empty core means the clause set is
    unsatisfiable on its own (root UNSAT — the verdict holds under any
    assumptions); a non-empty core always contains at least the assumption
    found falsified.  ``core`` is ``None`` on SAT/unknown answers.
    """

    satisfiable: Optional[bool]
    model: dict[int, bool] = field(default_factory=dict)
    stats: SolverStats = field(default_factory=SolverStats)
    core: Optional[list[int]] = None

    def __bool__(self) -> bool:
        return bool(self.satisfiable)

    def value(self, var: int) -> bool:
        """Value of ``var`` in the model (only valid when satisfiable)."""
        if not self.satisfiable:
            raise SatError("no model available: formula not satisfiable")
        return self.model[var]


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,..."""
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class _Clause:
    """Internal clause representation with an activity score and LBD."""

    __slots__ = ("lits", "learned", "activity", "lbd")

    def __init__(self, lits: list[int], learned: bool = False, lbd: int = 0):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0
        self.lbd = lbd


class SatSolver:
    """A CDCL SAT solver over DIMACS-style literals.

    Typical usage::

        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        result = solver.solve()
        assert result.satisfiable
    """

    def __init__(
        self,
        cnf: CNF | None = None,
        var_decay: float = 0.95,
        default_phase: bool = False,
        restart_interval: int = 100,
        sanitize: Optional[bool] = None,
        lbd_tiers: bool = True,
        phase_saving: bool = True,
        minimize: bool = True,
    ):
        if not (0.0 < var_decay <= 1.0):
            raise SatError(f"var_decay must be in (0, 1], got {var_decay}")
        if restart_interval < 1:
            raise SatError(f"restart_interval must be >= 1, got {restart_interval}")
        self._sanitize = resolve_sanitize(sanitize)
        self._lbd_tiers = bool(lbd_tiers)
        self._phase_saving = bool(phase_saving)
        self._minimize = bool(minimize)
        # Target phases: snapshot of the deepest trail seen, restored on
        # restart so the search re-approaches its best partial assignment.
        self._target_phase: Optional[list[bool]] = None
        self._best_trail = 0
        self._num_vars = 0
        self._clauses: list[_Clause] = []
        self._learned: list[_Clause] = []
        # watches[lit_code] -> clauses watching literal ``lit_code``
        self._watches: list[list[_Clause]] = [[], []]
        self._assign: list[int] = [_UNASSIGNED]
        self._level: list[int] = [0]
        self._reason: list[Optional[_Clause]] = [None]
        self._default_phase = default_phase
        self._restart_interval = restart_interval
        self._phase: list[bool] = [default_phase]
        self._activity: list[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = var_decay
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._order_heap: list[tuple[float, int]] = []
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._ok = True
        self._learned_limit = 2000
        self.stats = SolverStats()
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------ setup

    @staticmethod
    def _code(lit: int) -> int:
        """Map a DIMACS literal to an index usable for watch lists."""
        var = abs(lit)
        return 2 * var if lit > 0 else 2 * var + 1

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self._num_vars += 1
            self._assign.append(_UNASSIGNED)
            self._level.append(0)
            self._reason.append(None)
            self._phase.append(self._default_phase)
            self._activity.append(0.0)
            self._watches.append([])
            self._watches.append([])
            heapq.heappush(self._order_heap, (0.0, self._num_vars))

    def reserve(self, num_vars: int) -> None:
        """Make sure variables ``1..num_vars`` exist even if unconstrained."""
        self._ensure_var(num_vars)

    @property
    def num_clauses(self) -> int:
        """Problem clauses currently attached (units propagate, so excluded)."""
        return len(self._clauses)

    @property
    def num_learned(self) -> int:
        """Learned clauses currently in the database (post reduction)."""
        return len(self._learned)

    def add_cnf(self, cnf: CNF) -> None:
        """Add all clauses of ``cnf`` (and reserve its variable range)."""
        self._ensure_var(cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(clause)

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause; duplicate literals are removed and tautologies dropped."""
        if not self._ok:
            return
        seen: dict[int, int] = {}
        lits: list[int] = []
        for lit in literals:
            lit = int(lit)
            if lit == 0:
                raise SatError("literal 0 is not allowed in a clause")
            self._ensure_var(abs(lit))
            if lit in seen:
                continue
            if -lit in seen:
                return  # tautology
            seen[lit] = 1
            lits.append(lit)
        if not lits:
            self._ok = False
            return
        if len(self._trail_lim) != 0:
            raise SatError("clauses may only be added at decision level 0")
        # Drop literals already false at level 0; satisfied clauses are skipped.
        pruned: list[int] = []
        for lit in lits:
            val = self._lit_value(lit)
            if val == _TRUE and self._level[abs(lit)] == 0:
                return
            if val == _FALSE and self._level[abs(lit)] == 0:
                continue
            pruned.append(lit)
        if not pruned:
            self._ok = False
            return
        if len(pruned) == 1:
            if not self._enqueue(pruned[0], None):
                self._ok = False
            elif self._propagate() is not None:
                self._ok = False
            return
        clause = _Clause(pruned, learned=False)
        self._clauses.append(clause)
        self._attach(clause)

    def _attach(self, clause: _Clause) -> None:
        self._watches[self._code(clause.lits[0])].append(clause)
        self._watches[self._code(clause.lits[1])].append(clause)

    # ------------------------------------------------------------- assignment

    def _lit_value(self, lit: int) -> int:
        val = self._assign[abs(lit)]
        if val == _UNASSIGNED:
            return _UNASSIGNED
        return val if lit > 0 else -val

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        val = self._lit_value(lit)
        if val == _FALSE:
            return False
        if val == _TRUE:
            return True
        var = abs(lit)
        self._assign[var] = _TRUE if lit > 0 else _FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        if self._phase_saving:
            self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or ``None``."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            false_code = self._code(-lit)
            watchers = self._watches[false_code]
            new_watchers: list[_Clause] = []
            i = 0
            n = len(watchers)
            conflict: Optional[_Clause] = None
            while i < n:
                clause = watchers[i]
                i += 1
                lits = clause.lits
                # Ensure the falsified literal is at position 1.
                if lits[0] == -lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_value(first) == _TRUE:
                    new_watchers.append(clause)
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) != _FALSE:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[self._code(lits[1])].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watchers.append(clause)
                if not self._enqueue(first, clause):
                    conflict = clause
                    # copy the remaining watchers back untouched
                    new_watchers.extend(watchers[i:])
                    break
            self._watches[false_code] = new_watchers
            if conflict is not None:
                return conflict
        return None

    # --------------------------------------------------------------- analysis

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heapq.heappush(self._order_heap, (-self._activity[var], var))

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learned:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _lit_redundant(
        self,
        q: int,
        in_learned: set[int],
        levels: set[int],
        removable: set[int],
        failed: set[int],
    ) -> bool:
        """MiniSat's ``litRedundant``: iterative DFS over the implication graph.

        A learned-clause literal ``q`` is redundant when every literal of its
        reason clause is assigned at level 0, already in the learned clause,
        or itself (recursively) redundant.  ``removable``/``failed`` memoise
        verdicts across the literals of one learned clause; the ``levels``
        filter prunes branches that can never resolve into the clause (a
        decision level absent from the clause cannot be cancelled).
        """
        var0 = abs(q)
        if var0 in removable:
            return True
        if var0 in failed:
            return False
        reason0 = self._reason[var0]
        if reason0 is None:
            return False
        # Explicit DFS stack of (var, reason clause, next literal index).
        stack: list[tuple[int, _Clause, int]] = [(var0, reason0, 0)]
        while stack:
            var, reason, idx = stack.pop()
            descended = False
            lits = reason.lits
            while idx < len(lits):
                r = lits[idx]
                idx += 1
                rv = abs(r)
                if (
                    rv == var
                    or self._level[rv] == 0
                    or rv in in_learned
                    or rv in removable
                ):
                    continue
                r_reason = self._reason[rv]
                if r_reason is None or self._level[rv] not in levels or rv in failed:
                    # The whole path from var0 down to here depends on a
                    # non-redundant literal.
                    failed.add(var)
                    for v, _, _ in stack:
                        failed.add(v)
                    return False
                stack.append((var, reason, idx))
                stack.append((rv, r_reason, 0))
                descended = True
                break
            if not descended:
                removable.add(var)
        return True

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int, int]:
        """First-UIP conflict analysis.

        Returns the learned clause (with the asserting literal first), the
        backjump level, and the clause's LBD (distinct decision levels).
        """
        learned: list[int] = [0]
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = 0
        index = len(self._trail) - 1
        clause: Optional[_Clause] = conflict
        current_level = len(self._trail_lim)

        while True:
            assert clause is not None
            if clause.learned:
                self._bump_clause(clause)
            start = 0 if lit == 0 else 1
            for q in clause.lits[start:]:
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # pick next literal to resolve on
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            clause = self._reason[var]
            if counter == 0:
                break
        learned[0] = -lit

        # Recursive conflict-clause minimisation: self-subsuming resolution
        # over the whole implication graph (not just one reason level), so a
        # literal is also dropped when its reason resolves into the clause
        # through a chain of intermediate implications.
        if self._minimize and len(learned) > 1:
            in_learned = {abs(q) for q in learned}
            levels = {self._level[abs(q)] for q in learned[1:]}
            removable: set[int] = set()
            not_removable: set[int] = set()
            minimized = [learned[0]]
            for q in learned[1:]:
                if not self._lit_redundant(
                    q, in_learned, levels, removable, not_removable
                ):
                    minimized.append(q)
            self.stats.minimized_literals += len(learned) - len(minimized)
            learned = minimized

        lbd = len({self._level[abs(q)] for q in learned if self._level[abs(q)] > 0})
        lbd = max(lbd, 1)
        if len(learned) == 1:
            backjump = 0
        else:
            # find the second-highest decision level in the clause
            max_i = 1
            for i in range(2, len(learned)):
                if self._level[abs(learned[i])] > self._level[abs(learned[max_i])]:
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            backjump = self._level[abs(learned[1])]
        return learned, backjump, lbd

    def _analyze_final(self, failed: int) -> list[int]:
        """Failed-assumption core for assumption ``failed`` found falsified.

        MiniSat's ``analyzeFinal``: walk the trail backwards from the
        assignment of ``-failed``, expanding reason clauses; every
        reason-less assignment reached above level 0 is an assumption
        decision, and together with ``failed`` those assumptions already
        force the conflict.  Only called from the assumption re-assert loop,
        where every open decision level is an assumption level (a backjump
        that unassigned any assumption also unassigned every ordinary
        decision made after it), so the reason-less set never contains an
        ordinary decision.
        """
        core = [failed]
        var0 = abs(failed)
        if self._level[var0] == 0 or not self._trail_lim:
            # ``-failed`` is implied by the clause set alone: the conflict
            # needs no other assumption.
            return core
        seen = [False] * (self._num_vars + 1)
        seen[var0] = True
        for index in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            lit = self._trail[index]
            var = abs(lit)
            if not seen[var]:
                continue
            seen[var] = False
            reason = self._reason[var]
            if reason is None:
                # An assumption decision; the trail literal is the
                # assumption exactly as the caller passed it.
                core.append(lit)
            else:
                for q in reason.lits:
                    if abs(q) != var and self._level[abs(q)] > 0:
                        seen[abs(q)] = True
        return core

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        phase_saving = self._phase_saving
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            if phase_saving:
                self._phase[var] = self._assign[var] == _TRUE
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            heapq.heappush(self._order_heap, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # --------------------------------------------------------------- decision

    def _decide(self) -> int:
        """Pick the unassigned variable with the highest activity (or 0)."""
        while self._order_heap:
            _, var = heapq.heappop(self._order_heap)
            if self._assign[var] == _UNASSIGNED:
                return var
        for var in range(1, self._num_vars + 1):
            if self._assign[var] == _UNASSIGNED:
                return var
        return 0

    def _reduce_db(self) -> None:
        """Remove roughly half the learned clauses, best-LBD-first retention.

        The trigger threshold starts at 2000 clauses and grows geometrically
        on every reduction, so long incremental runs (PDR's thousands of
        consecution queries on one instance) keep more of what they learn
        instead of thrashing a fixed-size cache.

        With ``lbd_tiers`` (the default), retention is tiered by clause LBD
        rather than pure activity: *core* clauses (LBD <= 2) are never
        deleted, the *mid* tier (LBD <= 6) is only dropped once every
        *local* clause (LBD > 6) is gone, and within a tier the least
        active clauses go first.
        """
        if len(self._learned) < self._learned_limit:
            return
        self._learned_limit += self._learned_limit >> 1
        target = len(self._learned) // 2
        if self._lbd_tiers:
            candidates = [c for c in self._learned if c.lbd > _LBD_CORE]
            # Locals (lbd > _LBD_MID) sort before mids; least active first
            # within a tier.
            candidates.sort(key=lambda c: (c.lbd <= _LBD_MID, c.activity))
            drop = set(id(c) for c in candidates[:target])
        else:
            self._learned.sort(key=lambda c: c.activity)
            drop = set(id(c) for c in self._learned[:target])
        # Never drop clauses that are the reason of a current assignment.
        locked = set(id(c) for c in self._reason if c is not None)
        drop -= locked
        for code in range(2, 2 * self._num_vars + 2):
            self._watches[code] = [
                c for c in self._watches[code] if id(c) not in drop
            ]
        self._learned = [c for c in self._learned if id(c) not in drop]

    # ------------------------------------------------------------------ solve

    def solve(
        self,
        assumptions: Iterable[int] = (),
        conflict_budget: Optional[int] = None,
        need_model: bool = True,
    ) -> SatResult:
        """Decide satisfiability under optional assumptions.

        ``conflict_budget`` bounds the number of conflicts *of this call*
        (earlier calls on the same instance do not erode it); when exhausted
        the result has ``satisfiable=None``.  ``need_model=False`` skips
        building the model dict on SAT answers (for verdict-only callers).

        UNSAT answers carry a failed-assumption ``core`` (see
        :class:`SatResult`).  A root-level contradiction latches the solver
        unsatisfiable; an UNSAT caused only by the assumptions does not, so
        persistent contexts keep reusing the instance.
        """
        assumptions = [int(a) for a in assumptions]
        for a in assumptions:
            if a == 0:
                raise SatError("literal 0 is not allowed as an assumption")
            self._ensure_var(abs(a))
        if not self._ok:
            return SatResult(False, stats=self.stats.copy(), core=[])
        self._backtrack(0)
        self._best_trail = 0  # target phases track the deepest trail per call
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return SatResult(False, stats=self.stats.copy(), core=[])
        if self._sanitize:
            check_reference_invariants(self)

        restart_count = 0
        conflicts_until_restart = self._restart_interval * _luby(restart_count + 1)
        conflicts_seen = 0
        conflicts_spent = 0  # conflicts of this call only (budget accounting)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_seen += 1
                conflicts_spent += 1
                if len(self._trail_lim) == 0:
                    # A conflict with no open decision level contradicts the
                    # clause set alone: latch the instance root-UNSAT.
                    self._ok = False
                    return SatResult(False, stats=self.stats.copy(), core=[])
                if self._phase_saving and len(self._trail) > self._best_trail:
                    # Deepest trail of this call so far: snapshot the phases
                    # as the target assignment restored on restart.
                    self._best_trail = len(self._trail)
                    self._target_phase = self._phase.copy()
                learned, backjump, lbd = self._analyze(conflict)
                if self._sanitize:
                    check_reference_learned(self, learned)
                self._backtrack(backjump)
                if len(learned) == 1:
                    self._enqueue(learned[0], None)
                else:
                    clause = _Clause(list(learned), learned=True, lbd=lbd)
                    self._learned.append(clause)
                    self.stats.learned_clauses += 1
                    self.stats.lbd_sum += lbd
                    self._attach(clause)
                    self._enqueue(learned[0], clause)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if conflict_budget is not None and conflicts_spent >= conflict_budget:
                    self._backtrack(0)
                    return SatResult(None, stats=self.stats.copy())
                if conflicts_seen >= conflicts_until_restart:
                    # restart, keeping assumptions on re-descent
                    restart_count += 1
                    self.stats.restarts += 1
                    conflicts_seen = 0
                    conflicts_until_restart = self._restart_interval * _luby(
                        restart_count + 1
                    )
                    self._backtrack(0)
                    if self._phase_saving and self._target_phase is not None:
                        # Target-phase reset: re-approach the deepest partial
                        # assignment seen instead of a drifted phase mix.
                        n = min(len(self._phase), len(self._target_phase))
                        self._phase[:n] = self._target_phase[:n]
                    if self._sanitize:
                        check_reference_trail(self)
                        learned_before = len(self._learned)
                        self._reduce_db()
                        if len(self._learned) < learned_before:
                            check_reference_watches(self)
                    else:
                        self._reduce_db()
                continue

            # No conflict: re-assert any assumption not yet satisfied.
            next_lit = 0
            for a in assumptions:
                val = self._lit_value(a)
                if val == _FALSE:
                    # UNSAT under assumptions only: compute the failed core
                    # and leave the instance healthy for later queries.
                    core = self._analyze_final(a)
                    self._backtrack(0)
                    if self._sanitize:
                        check_reference_invariants(self)
                    return SatResult(False, stats=self.stats.copy(), core=core)
                if val == _UNASSIGNED:
                    next_lit = a
                    break
            if next_lit == 0:
                var = self._decide()
                if var == 0:
                    if self._sanitize:
                        check_reference_model(self)
                        check_reference_watches(self)
                        check_reference_reasons(self)
                    model: dict[int, bool] = {}
                    if need_model:
                        model = {
                            v: self._assign[v] == _TRUE
                            for v in range(1, self._num_vars + 1)
                        }
                    result = SatResult(True, model=model, stats=self.stats.copy())
                    self._backtrack(0)
                    return result
                self.stats.decisions += 1
                phase = self._phase[var]
                if phase != self._default_phase:
                    self.stats.saved_phase_hits += 1
                next_lit = var if phase else -var
            self._trail_lim.append(len(self._trail))
            self.stats.max_decision_level = max(
                self.stats.max_decision_level, len(self._trail_lim)
            )
            self._enqueue(next_lit, None)


def solve_cnf(cnf: CNF, assumptions: Iterable[int] = ()) -> SatResult:
    """Convenience one-shot solve of a :class:`CNF` formula."""
    return SatSolver(cnf).solve(assumptions=assumptions)
