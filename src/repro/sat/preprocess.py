"""Incrementality-safe CNF preprocessing between the blaster and the backend.

The :class:`Preprocessor` sits in :meth:`repro.solve.context.SolverContext._sync`
and filters every batch of freshly bit-blasted clauses before the SAT
backend sees them.  Three classic techniques are applied, each restricted to
forms that stay sound when more clauses arrive later (the whole point of
the persistent incremental context):

* **unit propagation** — root-level units are remembered forever; satisfied
  clauses are dropped and false literals stripped.  Discovered units are
  *also* emitted to the backend, so later assumptions conflicting with a
  propagated value still return UNSAT.
* **subsumption** — a new clause already implied by an emitted (or earlier
  pending) clause is dropped.  Only the forward direction is useful here:
  clauses already handed to an incremental backend cannot be retracted.
* **bounded variable elimination** — in the style of NiVER/SatELite, a
  variable is resolved away when *all* of its occurrences are still in the
  pending batch (so nothing already sent to the backend mentions it), it is
  not frozen, and the resolvent set is no larger than the clauses it
  replaces.  The original clauses are stored; if a later batch or a later
  assumption references an eliminated variable, the stored clauses are
  re-emitted (*un-elimination*), which keeps the trick sound under
  arbitrary future extension because ``originals ⊨ resolvents``.

**Frozen variables** (activation literals of push/pop scopes, the bits of
named bit-vector variables, assumption literals) are never eliminated, so
model extraction and scope retirement keep working unchanged.  Models from
the backend are completed through eliminated variables with
:meth:`Preprocessor.extend_model` (the standard reverse-order clause-fixing
pass), so callers that read auxiliary literals still see consistent values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


def _signature(clause: Sequence[int]) -> int:
    sig = 0
    for lit in clause:
        sig |= 1 << (lit & 63)
    return sig


@dataclass
class PreprocessStats:
    """Work counters accumulated over the preprocessor's lifetime."""

    clauses_in: int = 0
    clauses_emitted: int = 0
    units_found: int = 0
    satisfied_dropped: int = 0
    literals_stripped: int = 0
    subsumed: int = 0
    vars_eliminated: int = 0
    vars_restored: int = 0
    resolvents_added: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class Preprocessor:
    """Streaming clause filter with persistent state across batches."""

    def __init__(
        self,
        subsumption_len_limit: int = 16,
        subsumption_scan_limit: int = 2000,
        elim_occurrence_limit: int = 10,
        elim_resolvent_len_limit: int = 16,
        max_rounds: int = 3,
    ):
        self.subsumption_len_limit = subsumption_len_limit
        self.subsumption_scan_limit = subsumption_scan_limit
        self.elim_occurrence_limit = elim_occurrence_limit
        self.elim_resolvent_len_limit = elim_resolvent_len_limit
        self.max_rounds = max_rounds
        #: var -> root-level value
        self._value: dict[int, bool] = {}
        self._frozen: set[int] = set()
        # Emitted-clause database (for subsumption and the "nothing emitted
        # mentions this var" elimination precondition).
        self._db: dict[int, tuple[int, ...]] = {}
        self._db_occur: dict[int, list[int]] = {}
        self._db_sig: dict[int, int] = {}
        self._emitted_var_occ: dict[int, int] = {}
        self._next_cid = 0
        #: var -> its original clauses, in elimination order (dict order)
        self._eliminated: dict[int, list[tuple[int, ...]]] = {}
        self.unsat = False
        self.stats = PreprocessStats()

    # -------------------------------------------------------------- freezing

    def freeze(self, var: int) -> None:
        self._frozen.add(abs(var))

    def freeze_all(self, vars: Iterable[int]) -> None:
        for var in vars:
            self._frozen.add(abs(var))

    def is_frozen(self, var: int) -> bool:
        return abs(var) in self._frozen

    def is_eliminated(self, var: int) -> bool:
        return abs(var) in self._eliminated

    # ------------------------------------------------------------- main entry

    def flush(self, batch: Iterable[Sequence[int]]) -> list[tuple[int, ...]]:
        """Preprocess ``batch`` and return the clauses to hand to the backend."""
        pending: list[tuple[int, ...]] = [tuple(clause) for clause in batch]
        self.stats.clauses_in += len(pending)
        pending.extend(self._restore_referenced(pending))
        emitted_units: list[int] = []
        for _ in range(self.max_rounds):
            pending, new_units = self._propagate(pending)
            emitted_units.extend(new_units)
            if self.unsat:
                return []
            pending = self._subsume(pending)
            pending, eliminated_any = self._eliminate(pending)
            if not eliminated_any:
                break
        # Eliminations in the final round may have produced unit resolvents.
        pending, new_units = self._propagate(pending)
        emitted_units.extend(new_units)
        if self.unsat:
            return []
        out: list[tuple[int, ...]] = [(lit,) for lit in emitted_units]
        for clause in pending:
            self._db_add(clause)
            out.append(clause)
        self.stats.clauses_emitted += len(out)
        return out

    def require_vars(self, vars: Iterable[int]) -> list[tuple[int, ...]]:
        """Freeze ``vars`` and re-emit stored clauses of any eliminated ones.

        Called with assumption variables before a query: an assumption on an
        eliminated variable would otherwise be unconstrained.
        """
        restored: list[tuple[int, ...]] = []
        for var in vars:
            var = abs(var)
            self._frozen.add(var)
            if var in self._eliminated:
                restored.extend(self._restore_var(var))
        if not restored:
            return []
        return self.flush(restored)

    # -------------------------------------------------------------- the model

    def extend_model(self, model: dict[int, bool]) -> dict[int, bool]:
        """Complete a backend model through the eliminated variables.

        Standard SatELite reconstruction: walk the eliminated variables in
        reverse elimination order and flip each one to ``True`` exactly when
        some stored clause would otherwise be falsified.  Clauses stored at
        elimination time never mention variables eliminated earlier, so the
        reverse walk always has every other literal's value at hand.
        """
        if not self._eliminated:
            return model
        extended = dict(model)

        def lit_true(lit: int) -> bool:
            return extended.get(abs(lit), False) == (lit > 0)

        for var in reversed(self._eliminated):
            extended[var] = False
            for clause in self._eliminated[var]:
                if not any(lit_true(lit) for lit in clause):
                    # Elimination guarantees a fixing value exists, and with
                    # every other literal false it can only be ``var`` itself.
                    extended[var] = True
                    break
        return extended

    # ---------------------------------------------------------- un-elimination

    def _restore_var(self, var: int) -> list[tuple[int, ...]]:
        clauses = self._eliminated.pop(var)
        self.stats.vars_restored += 1
        return clauses

    def _restore_referenced(
        self, pending: list[tuple[int, ...]]
    ) -> list[tuple[int, ...]]:
        """Stored clauses of eliminated vars referenced by ``pending`` (transitive)."""
        restored: list[tuple[int, ...]] = []
        work = list(pending)
        while work:
            clause = work.pop()
            for lit in clause:
                var = abs(lit)
                if var in self._eliminated:
                    back = self._restore_var(var)
                    restored.extend(back)
                    work.extend(back)
        return restored

    # ------------------------------------------------------- unit propagation

    def _propagate(
        self, pending: list[tuple[int, ...]]
    ) -> tuple[list[tuple[int, ...]], list[int]]:
        """Simplify against root-level values; returns (clauses, new unit lits)."""
        new_units: list[int] = []
        clauses = list(pending)
        while True:
            changed = False
            survivors: list[tuple[int, ...]] = []
            for clause in clauses:
                satisfied = False
                stripped: list[int] = []
                for lit in clause:
                    value = self._value.get(abs(lit))
                    if value is None:
                        stripped.append(lit)
                    elif value == (lit > 0):
                        satisfied = True
                        break
                if satisfied:
                    self.stats.satisfied_dropped += 1
                    continue
                self.stats.literals_stripped += len(clause) - len(stripped)
                if not stripped:
                    self.unsat = True
                    return [], new_units
                if len(stripped) == 1:
                    lit = stripped[0]
                    existing = self._value.get(abs(lit))
                    if existing is not None and existing != (lit > 0):
                        self.unsat = True
                        return [], new_units
                    self._value[abs(lit)] = lit > 0
                    new_units.append(lit)
                    self.stats.units_found += 1
                    changed = True
                    continue
                survivors.append(tuple(stripped))
            clauses = survivors
            if not changed:
                return clauses, new_units

    # ------------------------------------------------------------- subsumption

    def _subsume(self, pending: list[tuple[int, ...]]) -> list[tuple[int, ...]]:
        """Drop pending clauses implied by an emitted or earlier pending clause."""
        kept: list[tuple[int, ...]] = []
        kept_sets: list[frozenset[int]] = []
        kept_sigs: list[int] = []
        # literal -> indices into ``kept``
        kept_occur: dict[int, list[int]] = {}
        for clause in pending:
            cset = frozenset(clause)
            sig = _signature(clause)
            if len(clause) <= self.subsumption_len_limit and self._is_subsumed(
                clause, cset, sig, kept, kept_sets, kept_sigs, kept_occur
            ):
                self.stats.subsumed += 1
                continue
            index = len(kept)
            kept.append(clause)
            kept_sets.append(cset)
            kept_sigs.append(sig)
            for lit in clause:
                kept_occur.setdefault(lit, []).append(index)
        return kept

    def _is_subsumed(
        self,
        clause: tuple[int, ...],
        cset: frozenset[int],
        sig: int,
        kept: list[tuple[int, ...]],
        kept_sets: list[frozenset[int]],
        kept_sigs: list[int],
        kept_occur: dict[int, list[int]],
    ) -> bool:
        scanned = 0
        inv_sig = ~sig
        for lit in clause:
            for cid in self._db_occur.get(lit, ()):
                scanned += 1
                if scanned > self.subsumption_scan_limit:
                    return False
                if self._db_sig[cid] & inv_sig:
                    continue
                other = self._db[cid]
                if len(other) <= len(cset) and cset.issuperset(other):
                    return True
            for index in kept_occur.get(lit, ()):
                scanned += 1
                if scanned > self.subsumption_scan_limit:
                    return False
                if kept_sigs[index] & inv_sig:
                    continue
                if len(kept[index]) <= len(cset) and cset.issuperset(
                    kept_sets[index]
                ):
                    return True
        return False

    # ------------------------------------------------- bounded var elimination

    def _eliminate(
        self, pending: list[tuple[int, ...]]
    ) -> tuple[list[tuple[int, ...]], bool]:
        """One bounded-variable-elimination pass over the pending batch."""
        occur: dict[int, set[int]] = {}
        clauses: dict[int, tuple[int, ...]] = dict(enumerate(pending))
        for pid, clause in clauses.items():
            for lit in clause:
                occur.setdefault(lit, set()).add(pid)

        limit = self.elim_occurrence_limit
        eliminated_any = False
        candidates = sorted(
            {
                abs(lit)
                for clause in clauses.values()
                for lit in clause
            },
            key=lambda v: len(occur.get(v, ())) + len(occur.get(-v, ())),
        )
        for var in candidates:
            if (
                var in self._frozen
                or var in self._value
                or self._emitted_var_occ.get(var, 0) > 0
            ):
                continue
            pos = [pid for pid in occur.get(var, ()) if pid in clauses]
            neg = [pid for pid in occur.get(-var, ()) if pid in clauses]
            if not pos and not neg:
                continue
            if len(pos) > limit or len(neg) > limit:
                continue
            resolvents: list[tuple[int, ...]] = []
            budget = len(pos) + len(neg)
            feasible = True
            for ppid in pos:
                for npid in neg:
                    resolvent = self._resolve(clauses[ppid], clauses[npid], var)
                    if resolvent is None:
                        continue  # tautology
                    if len(resolvent) > self.elim_resolvent_len_limit:
                        feasible = False
                        break
                    resolvents.append(resolvent)
                    if len(resolvents) > budget:
                        feasible = False
                        break
                if not feasible:
                    break
            if not feasible:
                continue
            # Accept: drop the var's clauses, keep their resolvents pending.
            originals = [clauses[pid] for pid in pos + neg]
            for pid in pos + neg:
                clause = clauses.pop(pid)
                for lit in clause:
                    occur[lit].discard(pid)
            for resolvent in resolvents:
                pid = len(pending) + self.stats.resolvents_added + 1
                while pid in clauses:
                    pid += 1
                clauses[pid] = resolvent
                for lit in resolvent:
                    occur.setdefault(lit, set()).add(pid)
                self.stats.resolvents_added += 1
            self._eliminated[var] = originals
            self.stats.vars_eliminated += 1
            eliminated_any = True
        return list(clauses.values()), eliminated_any

    @staticmethod
    def _resolve(
        pos_clause: tuple[int, ...], neg_clause: tuple[int, ...], var: int
    ) -> tuple[int, ...] | None:
        seen: set[int] = set()
        out: list[int] = []
        for clause, skip in ((pos_clause, var), (neg_clause, -var)):
            for lit in clause:
                if lit == skip:
                    continue
                if -lit in seen:
                    return None
                if lit not in seen:
                    seen.add(lit)
                    out.append(lit)
        return tuple(out)

    # ------------------------------------------------------------ emitted db

    def _db_add(self, clause: tuple[int, ...]) -> None:
        cid = self._next_cid
        self._next_cid += 1
        self._db[cid] = clause
        self._db_sig[cid] = _signature(clause)
        for lit in clause:
            self._db_occur.setdefault(lit, []).append(cid)
            var = abs(lit)
            self._emitted_var_occ[var] = self._emitted_var_occ.get(var, 0) + 1
