"""Flat clause-arena CDCL kernel: the fast drop-in for :class:`SatSolver`.

The reference solver (:mod:`repro.sat.solver`) stores every clause as a
``_Clause`` object holding a Python list of DIMACS literals.  On the PDR
obligation storms that dominate full-scale runs, the propagation loop then
pays an attribute lookup, a method call and a list indirection *per visited
literal* — the profile is pure interpreter overhead, not search.

:class:`ArenaSolver` keeps the exact MiniSat recipe (two-watched-literal
propagation with blockers, first-UIP learning, VSIDS, phase saving, Luby
restarts, ``analyzeFinal`` assumption cores) but rebuilds the data layout
around a single flat ``array('i')``:

* **Clause arena.**  Every clause lives inline in one int array as
  ``[size, act_slot, lit0, .., lit_{n-1}]``; a *clause ref* is the index of
  ``lit0``.  ``act_slot`` is ``-1`` for problem clauses and an index into
  the learned-activity side table otherwise — headers are reachable as
  ``arena[ref - 2]``/``arena[ref - 1]`` with plain integer arithmetic.
* **Encoded literals.**  Literals are stored pre-encoded (``2v`` for ``v``,
  ``2v + 1`` for ``¬v``), so negation is ``enc ^ 1``, the variable is
  ``enc >> 1``, and a literal's truth value is a single list index into a
  per-literal assignment table — no sign branch, no ``abs()``.
* **Index-array watchers.**  ``watches[enc]`` is a flat Python list of
  ``blocker, ref`` pairs; a satisfied blocker skips the clause without
  touching the arena at all.
* **Allocation-free hot loops.**  ``_propagate`` and ``_analyze`` hoist
  every container into a local and inline value lookup and enqueue; the
  only allocations on the conflict path are the learned clause itself.
* **Arena garbage collection.**  The learned database is bounded by a
  geometrically growing limit; on reduction the surviving clauses are
  *compacted* into a fresh arena (refs remapped, watchers rebuilt from the
  watched positions), so long runs neither fragment nor leak.

The public surface — constructor knobs, ``add_clause``/``add_cnf``/
``reserve``, ``solve(assumptions, conflict_budget, need_model)``, failed-
assumption cores, per-call budgets, root-UNSAT latching vs reusable
assumption-UNSAT, ``stats`` — matches :class:`SatSolver` exactly; the
reference solver stays alive as the differential baseline (see
``REPRO_SAT_BACKEND`` in :mod:`repro.solve.backend`).
"""

from __future__ import annotations

import heapq
from array import array
from typing import Iterable, Optional, Sequence

from repro.errors import SatError
from repro.sat.cnf import CNF
from repro.sat.sanitize import (
    check_arena_compaction,
    check_arena_invariants,
    check_arena_learned,
    check_arena_model,
    check_arena_reasons,
    check_arena_trail,
    check_arena_watches,
    resolve_sanitize,
)
from repro.sat.solver import _LBD_CORE, _LBD_MID, SatResult, SolverStats, _luby

#: Initial learned-clause cap; grows geometrically on every reduction.
_INITIAL_LEARNED_LIMIT = 2000


class ArenaSolver:
    """CDCL over a flat clause arena (drop-in for :class:`SatSolver`).

    Typical usage is identical to the reference solver::

        solver = ArenaSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        result = solver.solve()
        assert result.satisfiable
    """

    def __init__(
        self,
        cnf: CNF | None = None,
        var_decay: float = 0.95,
        default_phase: bool = False,
        restart_interval: int = 100,
        sanitize: Optional[bool] = None,
        lbd_tiers: bool = True,
        phase_saving: bool = True,
        minimize: bool = True,
    ):
        if not (0.0 < var_decay <= 1.0):
            raise SatError(f"var_decay must be in (0, 1], got {var_decay}")
        if restart_interval < 1:
            raise SatError(f"restart_interval must be >= 1, got {restart_interval}")
        self._sanitize = resolve_sanitize(sanitize)
        self._lbd_tiers = bool(lbd_tiers)
        self._phase_saving = bool(phase_saving)
        self._minimize = bool(minimize)
        # Target phases: snapshot of the deepest trail seen, restored on
        # restart so the search re-approaches its best partial assignment.
        self._target_phase: Optional[list[bool]] = None
        self._best_trail = 0
        self._num_vars = 0
        # Clause storage: [size, act_slot, lits...] records; refs point at
        # the first literal of a record.  ``act_slot`` indexes the parallel
        # learned-clause side tables (activity and LBD).
        self._arena = array("i")
        self._clause_refs: list[int] = []
        self._learned_refs: list[int] = []
        self._cla_act: list[float] = []
        self._cla_lbd: list[int] = []
        # watches[enc] is a flat [blocker, ref, blocker, ref, ...] list of
        # the clauses watching encoded literal ``enc``.
        self._watches: list[list[int]] = [[], []]
        # Per-encoded-literal truth value: 1 true, -1 false, 0 unassigned.
        self._values: list[int] = [0, 0]
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]  # per var: clause ref or -1
        self._default_phase = default_phase
        self._restart_interval = restart_interval
        self._phase: list[bool] = [default_phase]
        self._activity: list[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = var_decay
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._order_heap: list[tuple[float, int]] = []
        self._trail: list[int] = []  # encoded literals
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._ok = True
        self._learned_limit = _INITIAL_LEARNED_LIMIT
        self._seen = bytearray(1)
        self.stats = SolverStats()
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------ setup

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self._num_vars += 1
            self._values.append(0)
            self._values.append(0)
            self._level.append(0)
            self._reason.append(-1)
            self._phase.append(self._default_phase)
            self._activity.append(0.0)
            self._watches.append([])
            self._watches.append([])
            self._seen.append(0)
            heapq.heappush(self._order_heap, (0.0, self._num_vars))

    def reserve(self, num_vars: int) -> None:
        """Make sure variables ``1..num_vars`` exist even if unconstrained."""
        self._ensure_var(num_vars)

    @property
    def num_clauses(self) -> int:
        """Problem clauses currently attached (units propagate, so excluded)."""
        return len(self._clause_refs)

    @property
    def num_learned(self) -> int:
        """Learned clauses currently in the database (post reduction/GC)."""
        return len(self._learned_refs)

    def add_cnf(self, cnf: CNF) -> None:
        """Add all clauses of ``cnf`` (and reserve its variable range)."""
        self._ensure_var(cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(clause)

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause; duplicate literals are removed and tautologies dropped."""
        if not self._ok:
            return
        seen: dict[int, int] = {}
        lits: list[int] = []
        for lit in literals:
            lit = int(lit)
            if lit == 0:
                raise SatError("literal 0 is not allowed in a clause")
            self._ensure_var(abs(lit))
            if lit in seen:
                continue
            if -lit in seen:
                return  # tautology
            seen[lit] = 1
            lits.append(lit)
        if not lits:
            self._ok = False
            return
        if self._trail_lim:
            raise SatError("clauses may only be added at decision level 0")
        # Drop literals already false at level 0; satisfied clauses are skipped.
        values = self._values
        level = self._level
        pruned: list[int] = []
        for lit in lits:
            enc = lit + lit if lit > 0 else 1 - lit - lit
            val = values[enc]
            if val == 1 and level[enc >> 1] == 0:
                return
            if val == -1 and level[enc >> 1] == 0:
                continue
            pruned.append(enc)
        if not pruned:
            self._ok = False
            return
        if len(pruned) == 1:
            if not self._enqueue(pruned[0], -1):
                self._ok = False
            elif self._propagate() >= 0:
                self._ok = False
            return
        self._alloc(pruned, learned=False)

    def _alloc(self, enc_lits: Sequence[int], learned: bool, lbd: int = 0) -> int:
        """Append a clause record to the arena and attach its watches."""
        arena = self._arena
        if learned:
            slot = len(self._cla_act)
            self._cla_act.append(0.0)
            self._cla_lbd.append(lbd)
        else:
            slot = -1
        arena.append(len(enc_lits))
        arena.append(slot)
        ref = len(arena)
        arena.extend(enc_lits)
        (self._learned_refs if learned else self._clause_refs).append(ref)
        w0 = self._watches[enc_lits[0]]
        w0.append(enc_lits[1])
        w0.append(ref)
        w1 = self._watches[enc_lits[1]]
        w1.append(enc_lits[0])
        w1.append(ref)
        return ref

    # ------------------------------------------------------------- assignment

    def _enqueue(self, enc: int, reason_ref: int) -> bool:
        values = self._values
        val = values[enc]
        if val:
            return val > 0
        values[enc] = 1
        values[enc ^ 1] = -1
        var = enc >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason_ref
        if self._phase_saving:
            self._phase[var] = not (enc & 1)
        self._trail.append(enc)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause ref or ``-1``.

        The inner loop is the hot path of the whole stack: every container
        is hoisted into a local, literal values are single list indexes,
        and the implied-literal enqueue is inlined.
        """
        values = self._values
        arena = self._arena
        watches = self._watches
        trail = self._trail
        reason = self._reason
        level = self._level
        dl = len(self._trail_lim)
        qhead = self._qhead
        props = 0
        confl = -1
        while qhead < len(trail):
            p = trail[qhead]
            qhead += 1
            props += 1
            fl = p ^ 1  # the literal falsified by this assignment
            ws = watches[fl]
            i = 0
            j = 0
            n = len(ws)
            while i < n:
                blocker = ws[i]
                if values[blocker] == 1:
                    ws[j] = blocker
                    ws[j + 1] = ws[i + 1]
                    j += 2
                    i += 2
                    continue
                ref = ws[i + 1]
                i += 2
                # Ensure the falsified literal sits at position 1.
                first = arena[ref]
                if first == fl:
                    first = arena[ref + 1]
                    arena[ref] = first
                    arena[ref + 1] = fl
                if first != blocker and values[first] == 1:
                    ws[j] = first
                    ws[j + 1] = ref
                    j += 2
                    continue
                # Look for a replacement watch among the tail literals.
                end = ref + arena[ref - 2]
                k = ref + 2
                while k < end:
                    if values[arena[k]] != -1:
                        break
                    k += 1
                if k < end:
                    lk = arena[k]
                    arena[ref + 1] = lk
                    arena[k] = fl
                    wl = watches[lk]
                    wl.append(first)
                    wl.append(ref)
                    continue
                # Clause is unit or conflicting on ``first``.
                ws[j] = first
                ws[j + 1] = ref
                j += 2
                if values[first] == -1:
                    confl = ref
                    while i < n:  # keep the unvisited watchers
                        ws[j] = ws[i]
                        ws[j + 1] = ws[i + 1]
                        j += 2
                        i += 2
                    break
                values[first] = 1
                values[first ^ 1] = -1
                var = first >> 1
                level[var] = dl
                reason[var] = ref
                trail.append(first)
            del ws[j:]
            if confl >= 0:
                break
        self._qhead = len(trail) if confl >= 0 else qhead
        self.stats.propagations += props
        return confl

    # --------------------------------------------------------------- analysis

    def _lit_redundant(
        self,
        q: int,
        in_learned: set[int],
        levels: set[int],
        removable: set[int],
        failed: set[int],
    ) -> bool:
        """MiniSat's ``litRedundant`` over arena refs (encoded literal ``q``).

        Same contract as the reference kernel's method: iterative DFS over
        the implication graph, memoised per learned clause through
        ``removable``/``failed``, pruned by the set of decision ``levels``
        present in the clause.
        """
        arena = self._arena
        level = self._level
        reason = self._reason
        var0 = q >> 1
        if var0 in removable:
            return True
        if var0 in failed:
            return False
        ref0 = reason[var0]
        if ref0 < 0:
            return False
        # Explicit DFS stack of (var, reason ref, next literal offset).
        stack: list[tuple[int, int, int]] = [(var0, ref0, 0)]
        while stack:
            var, ref, idx = stack.pop()
            size = arena[ref - 2]
            descended = False
            while idx < size:
                rv = arena[ref + idx] >> 1
                idx += 1
                if (
                    rv == var
                    or level[rv] == 0
                    or rv in in_learned
                    or rv in removable
                ):
                    continue
                rref = reason[rv]
                if rref < 0 or level[rv] not in levels or rv in failed:
                    failed.add(var)
                    for v, _, _ in stack:
                        failed.add(v)
                    return False
                stack.append((var, ref, idx))
                stack.append((rv, rref, 0))
                descended = True
                break
            if not descended:
                removable.add(var)
        return True

    def _analyze(self, confl: int) -> tuple[list[int], int, int]:
        """First-UIP conflict analysis over arena refs.

        Returns the learned clause as encoded literals (asserting literal
        first), the backjump level, and the clause's LBD (distinct decision
        levels).
        """
        arena = self._arena
        level = self._level
        reason = self._reason
        trail = self._trail
        seen = self._seen
        activity = self._activity
        cla_act = self._cla_act
        heap = self._order_heap
        heappush = heapq.heappush
        var_inc = self._var_inc
        num_vars = self._num_vars
        dl = len(self._trail_lim)
        learned: list[int] = [0]
        touched: list[int] = []
        counter = 0
        p = -1
        index = len(trail) - 1
        ref = confl

        while True:
            slot = arena[ref - 1]
            if slot >= 0:
                act = cla_act[slot] + self._cla_inc
                cla_act[slot] = act
                if act > 1e20:
                    for s in range(len(cla_act)):
                        cla_act[s] *= 1e-20
                    self._cla_inc *= 1e-20
            start = ref if p < 0 else ref + 1
            for k in range(start, ref + arena[ref - 2]):
                q = arena[k]
                v = q >> 1
                if not seen[v] and level[v] > 0:
                    seen[v] = 1
                    touched.append(v)
                    a = activity[v] + var_inc
                    activity[v] = a
                    if a > 1e100:
                        for u in range(1, num_vars + 1):
                            activity[u] *= 1e-100
                        var_inc *= 1e-100
                        a = activity[v]
                    heappush(heap, (-a, v))
                    if level[v] >= dl:
                        counter += 1
                    else:
                        learned.append(q)
            # pick the next trail literal to resolve on
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            v = p >> 1
            seen[v] = 0
            counter -= 1
            if counter == 0:
                break
            ref = reason[v]
        learned[0] = p ^ 1
        self._var_inc = var_inc

        # Recursive conflict-clause minimisation (mirrors the reference
        # solver): self-subsuming resolution over the whole implication
        # graph, so literals also drop through chains of implications.
        if self._minimize and len(learned) > 1:
            in_learned = {q >> 1 for q in learned}
            levels = {level[q >> 1] for q in learned[1:]}
            removable: set[int] = set()
            not_removable: set[int] = set()
            minimized = [learned[0]]
            for q in learned[1:]:
                if not self._lit_redundant(
                    q, in_learned, levels, removable, not_removable
                ):
                    minimized.append(q)
            self.stats.minimized_literals += len(learned) - len(minimized)
            learned = minimized

        lbd = len({level[q >> 1] for q in learned if level[q >> 1] > 0})
        lbd = max(lbd, 1)
        if len(learned) == 1:
            backjump = 0
        else:
            max_i = 1
            max_level = level[learned[1] >> 1]
            for i in range(2, len(learned)):
                lv = level[learned[i] >> 1]
                if lv > max_level:
                    max_level = lv
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            backjump = max_level
        for v in touched:
            seen[v] = 0
        return learned, backjump, lbd

    def _analyze_final(self, failed: int) -> list[int]:
        """Failed-assumption core for DIMACS assumption ``failed``.

        Same walk as the reference solver's ``analyzeFinal``: expand reason
        clauses backwards from the falsifying assignment; every reason-less
        trail entry above level 0 is an assumption decision (the solve loop
        only opens ordinary decision levels after all assumptions are
        placed), and decodes back to the literal the caller passed.
        """
        core = [failed]
        var0 = failed if failed > 0 else -failed
        if self._level[var0] == 0 or not self._trail_lim:
            return core
        arena = self._arena
        reason = self._reason
        level = self._level
        trail = self._trail
        seen = self._seen
        touched = [var0]
        seen[var0] = 1
        for index in range(len(trail) - 1, self._trail_lim[0] - 1, -1):
            enc = trail[index]
            var = enc >> 1
            if not seen[var]:
                continue
            seen[var] = 0
            ref = reason[var]
            if ref < 0:
                core.append(-var if enc & 1 else var)
            else:
                for k in range(ref, ref + arena[ref - 2]):
                    qv = arena[k] >> 1
                    if qv != var and level[qv] > 0 and not seen[qv]:
                        seen[qv] = 1
                        touched.append(qv)
        for v in touched:
            seen[v] = 0
        return core

    def _backtrack(self, target: int) -> None:
        if len(self._trail_lim) <= target:
            return
        trail = self._trail
        values = self._values
        phase = self._phase
        reason = self._reason
        activity = self._activity
        heap = self._order_heap
        limit = self._trail_lim[target]
        phase_saving = self._phase_saving
        count = len(trail) - limit
        if count > 64 and count * 8 >= len(heap):
            # Bulk unassignment (the per-query backtrack from a full SAT
            # assignment): one O(heap) heapify beats thousands of
            # O(log heap) pushes — but only when the unassigned block is a
            # real fraction of the heap.  On huge instances with shallow
            # backjumps, heapifying the whole heap per conflict would
            # dominate the run.
            append = heap.append
            for index in range(len(trail) - 1, limit - 1, -1):
                enc = trail[index]
                var = enc >> 1
                if phase_saving:
                    phase[var] = not (enc & 1)
                values[enc] = 0
                values[enc ^ 1] = 0
                reason[var] = -1
                append((-activity[var], var))
            heapq.heapify(heap)
        else:
            heappush = heapq.heappush
            for index in range(len(trail) - 1, limit - 1, -1):
                enc = trail[index]
                var = enc >> 1
                if phase_saving:
                    phase[var] = not (enc & 1)
                values[enc] = 0
                values[enc ^ 1] = 0
                reason[var] = -1
                heappush(heap, (-activity[var], var))
        del trail[limit:]
        del self._trail_lim[target:]
        self._qhead = limit

    # --------------------------------------------------------------- decision

    def _decide(self) -> int:
        """Pick the unassigned variable with the highest activity (or 0)."""
        values = self._values
        heap = self._order_heap
        while heap:
            _, var = heapq.heappop(heap)
            if values[var + var] == 0:
                return var
        for var in range(1, self._num_vars + 1):
            if values[var + var] == 0:
                return var
        return 0

    # ------------------------------------------------------------ learned DB

    def _reduce_db(self) -> None:
        """Drop the least active half of the learned clauses and compact.

        Only runs once the learned database outgrows the current limit; the
        limit then grows geometrically so long incremental runs keep more
        of what they learn instead of thrashing a fixed-size cache.
        """
        if len(self._learned_refs) < self._learned_limit:
            return
        self._learned_limit += self._learned_limit >> 1
        arena = self._arena
        cla_act = self._cla_act
        target = len(self._learned_refs) // 2
        if self._lbd_tiers:
            # Tiered retention (see SatSolver._reduce_db): core clauses
            # (LBD <= 2) survive every reduction, locals (LBD > 6) go
            # before mids, least active first within a tier.
            cla_lbd = self._cla_lbd
            ordered = [
                ref
                for ref in self._learned_refs
                if cla_lbd[arena[ref - 1]] > _LBD_CORE
            ]
            ordered.sort(
                key=lambda ref: (
                    cla_lbd[arena[ref - 1]] <= _LBD_MID,
                    cla_act[arena[ref - 1]],
                )
            )
        else:
            ordered = sorted(
                self._learned_refs, key=lambda ref: cla_act[arena[ref - 1]]
            )
        # Never drop clauses that are the reason of a current assignment.
        locked = {ref for ref in self._reason if ref >= 0}
        drop = {ref for ref in ordered[:target] if ref not in locked}
        if drop:
            self._collect(drop)

    def _collect(self, drop: set[int]) -> None:
        """Compact the arena, dropping ``drop``; remap refs and watchers."""
        old = self._arena
        old_act = self._cla_act
        old_lbd = self._cla_lbd
        new = array("i")
        new_act: list[float] = []
        new_lbd: list[int] = []
        remap: dict[int, int] = {}
        new_clauses: list[int] = []
        new_learned: list[int] = []
        for refs, learned, out in (
            (self._clause_refs, False, new_clauses),
            (self._learned_refs, True, new_learned),
        ):
            for ref in refs:
                if learned and ref in drop:
                    continue
                size = old[ref - 2]
                new.append(size)
                if learned:
                    new.append(len(new_act))
                    new_act.append(old_act[old[ref - 1]])
                    new_lbd.append(old_lbd[old[ref - 1]])
                else:
                    new.append(-1)
                nref = len(new)
                new.extend(old[ref : ref + size])
                remap[ref] = nref
                out.append(nref)
        self._arena = new
        self._cla_act = new_act
        self._cla_lbd = new_lbd
        self._clause_refs = new_clauses
        self._learned_refs = new_learned
        reason = self._reason
        for var in range(len(reason)):
            if reason[var] >= 0:
                reason[var] = remap[reason[var]]
        # Rebuild watchers from the watched positions (0 and 1), which the
        # propagation loop keeps authoritative; the opposite watch is the
        # natural blocker.
        for watcher in self._watches:
            del watcher[:]
        watches = self._watches
        for nref in new_clauses:
            l0 = new[nref]
            l1 = new[nref + 1]
            w = watches[l0]
            w.append(l1)
            w.append(nref)
            w = watches[l1]
            w.append(l0)
            w.append(nref)
        for nref in new_learned:
            l0 = new[nref]
            l1 = new[nref + 1]
            w = watches[l0]
            w.append(l1)
            w.append(nref)
            w = watches[l1]
            w.append(l0)
            w.append(nref)

    # ------------------------------------------------------------------ solve

    def solve(
        self,
        assumptions: Iterable[int] = (),
        conflict_budget: Optional[int] = None,
        need_model: bool = True,
    ) -> SatResult:
        """Decide satisfiability under optional assumptions.

        Same contract as :meth:`SatSolver.solve`: per-call conflict budgets
        (``satisfiable=None`` when exhausted), failed-assumption cores on
        UNSAT, root-UNSAT latching, reusable assumption-UNSAT, and
        ``need_model=False`` for verdict-only callers.  The returned
        ``stats`` is a detached snapshot.
        """
        assumptions = [int(a) for a in assumptions]
        for a in assumptions:
            if a == 0:
                raise SatError("literal 0 is not allowed as an assumption")
            self._ensure_var(abs(a))
        stats = self.stats
        if not self._ok:
            return SatResult(False, stats=stats.copy(), core=[])
        self._backtrack(0)
        self._best_trail = 0  # target phases track the deepest trail per call
        if self._propagate() >= 0:
            self._ok = False
            return SatResult(False, stats=stats.copy(), core=[])
        if self._sanitize:
            check_arena_invariants(self)

        enc_assumptions = [a + a if a > 0 else 1 - a - a for a in assumptions]
        # The search loop below inlines unit propagation rather than calling
        # :meth:`_propagate`: the storm workloads make one (near-empty)
        # propagation pass per decision, and at ~10M passes per PDR run the
        # method-call overhead and per-call local re-hoisting dominate the
        # actual work.  Every container is hoisted ONCE for the whole call;
        # ``qhead`` lives in a local mirrored back into ``self._qhead``
        # before any helper that reads or writes it runs.
        values = self._values
        arena = self._arena
        watches = self._watches
        trail = self._trail
        trail_lim = self._trail_lim
        reason = self._reason
        level = self._level
        num_assumptions = len(enc_assumptions)
        restart_count = 0
        conflicts_until_restart = self._restart_interval * _luby(1)
        conflicts_seen = 0
        conflicts_spent = 0  # conflicts of this call only (budget accounting)
        qhead = self._qhead
        props = 0

        while True:
            # ---------------------------------------- inline unit propagation
            confl = -1
            dl = len(trail_lim)
            while qhead < len(trail):
                p = trail[qhead]
                qhead += 1
                props += 1
                fl = p ^ 1  # the literal falsified by this assignment
                ws = watches[fl]
                i = 0
                j = 0
                n = len(ws)
                while i < n:
                    blocker = ws[i]
                    if values[blocker] == 1:
                        ws[j] = blocker
                        ws[j + 1] = ws[i + 1]
                        j += 2
                        i += 2
                        continue
                    ref = ws[i + 1]
                    i += 2
                    # Ensure the falsified literal sits at position 1.
                    first = arena[ref]
                    if first == fl:
                        first = arena[ref + 1]
                        arena[ref] = first
                        arena[ref + 1] = fl
                    if first != blocker and values[first] == 1:
                        ws[j] = first
                        ws[j + 1] = ref
                        j += 2
                        continue
                    # Look for a replacement watch among the tail literals.
                    end = ref + arena[ref - 2]
                    k = ref + 2
                    while k < end:
                        if values[arena[k]] != -1:
                            break
                        k += 1
                    if k < end:
                        lk = arena[k]
                        arena[ref + 1] = lk
                        arena[k] = fl
                        wl = watches[lk]
                        wl.append(first)
                        wl.append(ref)
                        continue
                    # Clause is unit or conflicting on ``first``.
                    ws[j] = first
                    ws[j + 1] = ref
                    j += 2
                    if values[first] == -1:
                        confl = ref
                        while i < n:  # keep the unvisited watchers
                            ws[j] = ws[i]
                            ws[j + 1] = ws[i + 1]
                            j += 2
                            i += 2
                        break
                    values[first] = 1
                    values[first ^ 1] = -1
                    var = first >> 1
                    level[var] = dl
                    reason[var] = ref
                    trail.append(first)
                del ws[j:]
                if confl >= 0:
                    qhead = len(trail)
                    break
            # ------------------------------------------------- conflict case
            if confl >= 0:
                self._qhead = qhead
                stats.conflicts += 1
                conflicts_seen += 1
                conflicts_spent += 1
                if not trail_lim:
                    # Conflict with no open decision level: root UNSAT.
                    self._ok = False
                    stats.propagations += props
                    return SatResult(False, stats=stats.copy(), core=[])
                if self._phase_saving and len(trail) > self._best_trail:
                    # Deepest trail of this call so far: snapshot the trail
                    # polarities as the target restored on restart.  (The
                    # inline propagation loop skips per-enqueue phase
                    # writes, so the snapshot is composed from the trail.)
                    self._best_trail = len(trail)
                    target_phase = self._phase.copy()
                    for enc in trail:
                        target_phase[enc >> 1] = not (enc & 1)
                    self._target_phase = target_phase
                learned, backjump, lbd = self._analyze(confl)
                if self._sanitize:
                    check_arena_learned(self, learned)
                self._backtrack(backjump)
                qhead = self._qhead
                if len(learned) == 1:
                    self._enqueue(learned[0], -1)
                else:
                    ref = self._alloc(learned, learned=True, lbd=lbd)
                    stats.learned_clauses += 1
                    stats.lbd_sum += lbd
                    self._enqueue(learned[0], ref)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if conflict_budget is not None and conflicts_spent >= conflict_budget:
                    self._backtrack(0)
                    stats.propagations += props
                    return SatResult(None, stats=stats.copy())
                if conflicts_seen >= conflicts_until_restart:
                    restart_count += 1
                    stats.restarts += 1
                    conflicts_seen = 0
                    conflicts_until_restart = self._restart_interval * _luby(
                        restart_count + 1
                    )
                    self._backtrack(0)
                    if self._phase_saving and self._target_phase is not None:
                        # Target-phase reset: re-approach the deepest partial
                        # assignment seen instead of a drifted phase mix.
                        phase = self._phase
                        tp = self._target_phase
                        n = min(len(phase), len(tp))
                        phase[:n] = tp[:n]
                    if self._sanitize:
                        check_arena_trail(self)
                        learned_before = len(self._learned_refs)
                        self._reduce_db()
                        if len(self._learned_refs) < learned_before:
                            check_arena_compaction(self)
                    else:
                        self._reduce_db()
                    # Reduction may have compacted into a fresh arena (the
                    # watch/value/reason containers are reused in place).
                    arena = self._arena
                    qhead = self._qhead
                continue

            # No conflict: place the next assumption (levels 0..A-1 are
            # assumption levels, in order, so the next one is simply
            # assumptions[decision_level]) or make a heuristic decision.
            self._qhead = qhead
            dl = len(trail_lim)
            next_enc = -1
            while dl < num_assumptions:
                enc = enc_assumptions[dl]
                val = values[enc]
                if val == 1:
                    # Already satisfied: open an empty level to keep the
                    # level <-> assumption-index correspondence.
                    trail_lim.append(len(trail))
                    dl += 1
                    continue
                if val == -1:
                    # UNSAT under assumptions only: compute the failed core
                    # and leave the instance healthy for later queries.
                    core = self._analyze_final(assumptions[dl])
                    self._backtrack(0)
                    if self._sanitize:
                        check_arena_invariants(self)
                    stats.propagations += props
                    return SatResult(False, stats=stats.copy(), core=core)
                next_enc = enc
                break
            if next_enc < 0:
                var = self._decide()
                if var == 0:
                    if self._sanitize:
                        check_arena_model(self)
                        check_arena_watches(self)
                        check_arena_reasons(self)
                    model: dict[int, bool] = {}
                    if need_model:
                        model = {
                            v: values[v + v] == 1
                            for v in range(1, self._num_vars + 1)
                        }
                    stats.propagations += props
                    result = SatResult(True, model=model, stats=stats.copy())
                    self._backtrack(0)
                    return result
                stats.decisions += 1
                phase = self._phase[var]
                if phase != self._default_phase:
                    stats.saved_phase_hits += 1
                next_enc = var + var if phase else var + var + 1
            trail_lim.append(len(trail))
            if len(trail_lim) > stats.max_decision_level:
                stats.max_decision_level = len(trail_lim)
            self._enqueue(next_enc, -1)
