"""CNF formula container and DIMACS serialisation.

Literals follow the DIMACS convention: variables are positive integers and a
negative integer denotes the negated variable.  Variable 0 is never used.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import SatError


class CNF:
    """A formula in conjunctive normal form.

    The class tracks the highest variable index seen so fresh variables can
    be allocated with :meth:`new_var`, which is how the Tseitin encoder uses
    it.
    """

    def __init__(self, clauses: Iterable[Sequence[int]] | None = None, num_vars: int = 0):
        self.clauses: list[tuple[int, ...]] = []
        self.num_vars = int(num_vars)
        if clauses is not None:
            for clause in clauses:
                self.add_clause(clause)

    def new_var(self) -> int:
        """Allocate and return a fresh variable index."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Sequence[int]) -> None:
        """Add a clause given as a sequence of non-zero DIMACS literals.

        Clauses are normalised on the way in: duplicate literals are dropped
        (keeping first-occurrence order), tautologies (``x ∨ ¬x``) are
        skipped entirely, and literal 0 is rejected with :class:`SatError`.
        Variable counting still covers every literal seen, including those
        of a skipped tautology, so variable numbering stays aligned with
        whatever produced the clause.
        """
        seen: set[int] = set()
        clause: list[int] = []
        tautology = False
        for lit in literals:
            lit = int(lit)
            if lit == 0:
                raise SatError("literal 0 is not allowed in a clause")
            self.num_vars = max(self.num_vars, abs(lit))
            if -lit in seen:
                tautology = True
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        if not tautology:
            self.clauses.append(tuple(clause))

    def extend(self, clauses: Iterable[Sequence[int]]) -> None:
        """Add many clauses at once."""
        for clause in clauses:
            self.add_clause(clause)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self.clauses)

    def copy(self) -> "CNF":
        """Return an independent copy of this formula."""
        dup = CNF(num_vars=self.num_vars)
        dup.clauses = list(self.clauses)
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CNF(num_vars={self.num_vars}, num_clauses={len(self.clauses)})"


def to_dimacs(cnf: CNF) -> str:
    """Serialise ``cnf`` to DIMACS text."""
    lines = [f"p cnf {cnf.num_vars} {len(cnf.clauses)}"]
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def parse_dimacs(text: str) -> CNF:
    """Parse DIMACS text into a :class:`CNF`.

    Comment lines (``c ...``) are ignored; the problem line is optional but,
    when present, its variable count is honoured even if larger than any
    literal actually used.
    """
    cnf = CNF()
    declared_vars = 0
    current: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c") or line.startswith("%"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SatError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                cnf.add_clause(current)
                current = []
            else:
                current.append(lit)
    if current:
        raise SatError("DIMACS input ends with an unterminated clause")
    cnf.num_vars = max(cnf.num_vars, declared_vars)
    return cnf
