"""Kernel sanitizers: switchable invariant checks for both CDCL kernels.

Enabled with ``REPRO_SANITIZE=1`` (threaded exactly like
``REPRO_SAT_BACKEND``: the environment variable sets the process default,
and both kernels also take an explicit ``sanitize=`` constructor argument
that overrides it).  When enabled, the solvers re-validate their core data
structure invariants at every quiescent point of the search:

* **two-watched-literal consistency** — every attached clause is watched by
  exactly its first two literals, every watcher entry points at a live
  clause on one of its watch literals, and (arena kernel) every blocker is
  a literal of its clause;
* **trail / decision-level monotonicity** — assignment levels never
  decrease along the trail, decision-level boundaries are increasing and in
  range, the propagation head stays within the trail, and the number of
  assigned variables equals the trail length;
* **reason-clause sanity** — the reason clause of every implied assignment
  has the implied literal first (and true) with every other literal false
  at a level no higher than the implied one;
* **arena compaction integrity** — after a learned-database reduction the
  arena parses back into exactly the recorded clause refs, activity slots
  are a bijection, and reason refs survived the remap;
* **model soundness** — every SAT answer is checked against *every* clause
  (problem and learned) before it is returned;
* **learned-clause implication** — after every conflict analysis the
  (recursively minimised) learned clause must still be falsified by the
  conflicting assignment with its asserting literal at the conflict level,
  so a minimisation pass that drops a load-bearing literal is caught at the
  conflict that produced it.

A violated invariant raises :class:`~repro.errors.SanitizerError` — it
always means kernel corruption, never a property of the input.  Apart from
the per-conflict learned-clause check (which is O(clause), not O(database)),
the checks only run at decision points of the solve loop (entry, restarts,
reductions and answers), so the asymptotic cost is a handful of database
scans per query, not one per conflict.
"""

from __future__ import annotations

import os

from repro.errors import SanitizerError

#: Environment variable enabling the kernel sanitizers process-wide.
ENV_SANITIZE = "REPRO_SANITIZE"

_TRUE_VALUES = ("1", "true", "on", "yes")
_FALSE_VALUES = ("", "0", "false", "off", "no")


def default_sanitize() -> bool:
    """The process default: ``$REPRO_SANITIZE`` when set, else off."""
    raw = os.environ.get(ENV_SANITIZE)
    if raw is None:
        return False
    value = raw.strip().lower()
    if value in _TRUE_VALUES:
        return True
    if value in _FALSE_VALUES:
        return False
    raise SanitizerError(
        f"{ENV_SANITIZE} must be one of {_TRUE_VALUES + _FALSE_VALUES[1:]}, "
        f"got {raw!r}"
    )


def resolve_sanitize(sanitize: "bool | None") -> bool:
    """Normalise a ``sanitize`` argument (``None`` = process default)."""
    if sanitize is None:
        return default_sanitize()
    return bool(sanitize)


def _fail(solver, check: str, detail: str) -> None:
    raise SanitizerError(
        f"{type(solver).__name__} sanitizer [{check}]: {detail}"
    )


# ---------------------------------------------------------------------------
# Reference kernel (repro.sat.solver.SatSolver — per-object clauses)
# ---------------------------------------------------------------------------


def check_reference_trail(solver) -> None:
    """Trail/decision-level monotonicity for the reference kernel."""
    trail = solver._trail
    trail_lim = solver._trail_lim
    assign = solver._assign
    level = solver._level
    if not 0 <= solver._qhead <= len(trail):
        _fail(solver, "trail", f"qhead {solver._qhead} outside trail of {len(trail)}")
    prev = -1
    for lim in trail_lim:
        if not 0 <= lim <= len(trail):
            _fail(solver, "trail", f"decision boundary {lim} outside the trail")
        if lim < prev:
            _fail(solver, "trail", f"decision boundaries not monotone: {trail_lim}")
        prev = lim
    seen_vars: set[int] = set()
    dl = 0
    for index, lit in enumerate(trail):
        var = abs(lit)
        if var in seen_vars:
            _fail(solver, "trail", f"variable {var} assigned twice on the trail")
        seen_vars.add(var)
        value = assign[var]
        if (value == 1) != (lit > 0) or value == 0:
            _fail(solver, "trail", f"trail literal {lit} disagrees with assignment")
        while dl < len(trail_lim) and trail_lim[dl] <= index:
            dl += 1
        if level[var] != dl:
            _fail(
                solver,
                "trail",
                f"variable {var} at level {level[var]}, trail says {dl}",
            )
    assigned = sum(1 for v in range(1, solver._num_vars + 1) if assign[v] != 0)
    if assigned != len(trail):
        _fail(
            solver,
            "trail",
            f"{assigned} assigned variables but trail holds {len(trail)}",
        )


def check_reference_watches(solver) -> None:
    """Two-watched-literal consistency for the reference kernel."""
    code = solver._code
    attached: dict[int, object] = {}
    for clause in solver._clauses:
        attached[id(clause)] = clause
    for clause in solver._learned:
        attached[id(clause)] = clause
    counts: dict[int, int] = {}
    for watch_code in range(2, 2 * solver._num_vars + 2):
        for clause in solver._watches[watch_code]:
            if id(clause) not in attached:
                _fail(solver, "watches", "watcher references a detached clause")
            lits = clause.lits
            if watch_code not in (code(lits[0]), code(lits[1])):
                _fail(
                    solver,
                    "watches",
                    f"clause {lits} watched on a non-watch literal",
                )
            counts[id(clause)] = counts.get(id(clause), 0) + 1
    for cid, clause in attached.items():
        if len(clause.lits) < 2:
            _fail(solver, "watches", f"attached clause too short: {clause.lits}")
        if counts.get(cid, 0) != 2:
            _fail(
                solver,
                "watches",
                f"clause {clause.lits} has {counts.get(cid, 0)} watcher "
                "entries, expected 2",
            )


def check_reference_reasons(solver) -> None:
    """Reason-clause sanity for the reference kernel."""
    assign = solver._assign
    level = solver._level
    for var in range(1, solver._num_vars + 1):
        reason = solver._reason[var]
        if reason is None:
            continue
        if assign[var] == 0:
            _fail(solver, "reasons", f"unassigned variable {var} has a reason")
        lits = reason.lits
        implied = var if assign[var] == 1 else -var
        if lits[0] != implied:
            _fail(
                solver,
                "reasons",
                f"reason of {var} does not start with its implied literal",
            )
        for lit in lits[1:]:
            other = abs(lit)
            value = assign[other]
            if (value == 1) == (lit > 0) or value == 0:
                _fail(
                    solver,
                    "reasons",
                    f"reason of {var} has non-false tail literal {lit}",
                )
            if level[other] > level[var]:
                _fail(
                    solver,
                    "reasons",
                    f"reason of {var} (level {level[var]}) depends on "
                    f"level-{level[other]} literal {lit}",
                )


def check_reference_model(solver) -> None:
    """Full clause-satisfaction check before a SAT answer is returned."""
    assign = solver._assign
    for var in range(1, solver._num_vars + 1):
        if assign[var] == 0:
            _fail(solver, "model", f"SAT answer with unassigned variable {var}")
    for group, clauses in (("problem", solver._clauses), ("learned", solver._learned)):
        for clause in clauses:
            if not any(
                (assign[abs(lit)] == 1) == (lit > 0) for lit in clause.lits
            ):
                _fail(
                    solver,
                    "model",
                    f"SAT answer falsifies a {group} clause: {clause.lits}",
                )


def check_reference_learned(solver, learned) -> None:
    """A (minimised) learned clause must still imply the conflict.

    Called right after conflict analysis, before the backjump: every literal
    of the learned clause must be false under the conflicting assignment
    (so the clause genuinely forbids the state that produced the conflict —
    a minimisation that dropped a load-bearing literal breaks this), and
    the asserting literal must sit at the current decision level so the
    backjump makes the clause unit.
    """
    current_level = len(solver._trail_lim)
    for lit in learned:
        var = abs(lit)
        value = solver._assign[var]
        if value == 0:
            _fail(
                solver,
                "learned",
                f"learned clause {learned} holds unassigned literal {lit}",
            )
        if (value == 1) == (lit > 0):
            _fail(
                solver,
                "learned",
                f"learned clause {learned} is not conflicting: {lit} is true",
            )
    if solver._level[abs(learned[0])] != current_level:
        _fail(
            solver,
            "learned",
            f"asserting literal {learned[0]} not at conflict level "
            f"{current_level}",
        )


def check_reference_invariants(solver) -> None:
    """The cheap always-on bundle: trail + reasons (no database scan)."""
    check_reference_trail(solver)
    check_reference_reasons(solver)


# ---------------------------------------------------------------------------
# Arena kernel (repro.sat.arena.ArenaSolver — flat clause arena)
# ---------------------------------------------------------------------------


def _arena_refs(solver) -> dict[int, bool]:
    """Map of clause ref -> is_learned for every recorded clause."""
    refs = {ref: False for ref in solver._clause_refs}
    for ref in solver._learned_refs:
        refs[ref] = True
    return refs


def check_arena_integrity(solver) -> None:
    """Arena record structure: sizes, slots and refs must all reconcile.

    Run after every learned-database reduction (which compacts into a fresh
    arena) and at query entry: a mis-remapped ref or corrupted size header
    here means later propagation reads garbage literals.
    """
    arena = solver._arena
    recorded = _arena_refs(solver)
    max_enc = 2 * solver._num_vars + 2
    seen_slots: set[int] = set()
    pos = 0
    parsed: dict[int, bool] = {}
    while pos < len(arena):
        size = arena[pos]
        slot = arena[pos + 1] if pos + 1 < len(arena) else None
        if size < 2 or pos + 2 + size > len(arena):
            _fail(solver, "arena", f"record at {pos} has bad size {size}")
        ref = pos + 2
        if slot is None:
            _fail(solver, "arena", f"truncated record header at {pos}")
        if slot >= 0:
            if slot >= len(solver._cla_act) or slot in seen_slots:
                _fail(solver, "arena", f"record at {pos} has bad activity slot {slot}")
            seen_slots.add(slot)
        for k in range(ref, ref + size):
            enc = arena[k]
            if not 2 <= enc < max_enc:
                _fail(solver, "arena", f"record at {pos} holds bad literal {enc}")
        parsed[ref] = slot >= 0
        pos = ref + size
    if parsed != recorded:
        extra = set(parsed) ^ set(recorded)
        _fail(
            solver,
            "arena",
            f"recorded refs disagree with arena records (diff at {sorted(extra)[:4]})",
        )
    for var in range(1, solver._num_vars + 1):
        ref = solver._reason[var]
        if ref >= 0 and ref not in parsed:
            _fail(solver, "arena", f"reason of variable {var} points at dead ref {ref}")


def check_arena_watches(solver) -> None:
    """Two-watched-literal consistency for the arena kernel."""
    arena = solver._arena
    recorded = _arena_refs(solver)
    counts: dict[int, int] = {}
    for enc in range(2, 2 * solver._num_vars + 2):
        ws = solver._watches[enc]
        if len(ws) % 2:
            _fail(solver, "watches", f"odd watcher list on literal {enc}")
        for i in range(0, len(ws), 2):
            blocker = ws[i]
            ref = ws[i + 1]
            if ref not in recorded:
                _fail(solver, "watches", f"watcher references dead ref {ref}")
            if enc not in (arena[ref], arena[ref + 1]):
                _fail(
                    solver,
                    "watches",
                    f"clause ref {ref} watched on non-watch literal {enc}",
                )
            size = arena[ref - 2]
            if blocker not in arena[ref : ref + size]:
                _fail(
                    solver,
                    "watches",
                    f"blocker {blocker} is not a literal of clause ref {ref}",
                )
            counts[ref] = counts.get(ref, 0) + 1
    for ref in recorded:
        if counts.get(ref, 0) != 2:
            _fail(
                solver,
                "watches",
                f"clause ref {ref} has {counts.get(ref, 0)} watcher entries, "
                "expected 2",
            )


def check_arena_trail(solver) -> None:
    """Trail/decision-level monotonicity for the arena kernel."""
    trail = solver._trail
    trail_lim = solver._trail_lim
    values = solver._values
    level = solver._level
    if not 0 <= solver._qhead <= len(trail):
        _fail(solver, "trail", f"qhead {solver._qhead} outside trail of {len(trail)}")
    prev = -1
    for lim in trail_lim:
        if not 0 <= lim <= len(trail):
            _fail(solver, "trail", f"decision boundary {lim} outside the trail")
        if lim < prev:
            _fail(solver, "trail", f"decision boundaries not monotone: {trail_lim}")
        prev = lim
    seen_vars: set[int] = set()
    dl = 0
    for index, enc in enumerate(trail):
        var = enc >> 1
        if var in seen_vars:
            _fail(solver, "trail", f"variable {var} assigned twice on the trail")
        seen_vars.add(var)
        if values[enc] != 1 or values[enc ^ 1] != -1:
            _fail(solver, "trail", f"trail literal {enc} disagrees with values")
        while dl < len(trail_lim) and trail_lim[dl] <= index:
            dl += 1
        if level[var] != dl:
            _fail(
                solver,
                "trail",
                f"variable {var} at level {level[var]}, trail says {dl}",
            )
    assigned = sum(
        1 for v in range(1, solver._num_vars + 1) if values[v + v] != 0
    )
    if assigned != len(trail):
        _fail(
            solver,
            "trail",
            f"{assigned} assigned variables but trail holds {len(trail)}",
        )


def check_arena_reasons(solver) -> None:
    """Reason-clause sanity for the arena kernel."""
    arena = solver._arena
    values = solver._values
    level = solver._level
    for var in range(1, solver._num_vars + 1):
        ref = solver._reason[var]
        if ref < 0:
            continue
        enc_true = var + var if values[var + var] == 1 else var + var + 1
        if values[enc_true] != 1:
            _fail(solver, "reasons", f"unassigned variable {var} has a reason")
        if arena[ref] != enc_true:
            _fail(
                solver,
                "reasons",
                f"reason of {var} does not start with its implied literal",
            )
        size = arena[ref - 2]
        for k in range(ref + 1, ref + size):
            enc = arena[k]
            if values[enc] != -1:
                _fail(
                    solver,
                    "reasons",
                    f"reason of {var} has non-false tail literal {enc}",
                )
            if level[enc >> 1] > level[var]:
                _fail(
                    solver,
                    "reasons",
                    f"reason of {var} (level {level[var]}) depends on "
                    f"level-{level[enc >> 1]} literal {enc}",
                )


def check_arena_model(solver) -> None:
    """Full clause-satisfaction check before a SAT answer is returned."""
    arena = solver._arena
    values = solver._values
    for var in range(1, solver._num_vars + 1):
        if values[var + var] == 0:
            _fail(solver, "model", f"SAT answer with unassigned variable {var}")
    for group, refs in (
        ("problem", solver._clause_refs),
        ("learned", solver._learned_refs),
    ):
        for ref in refs:
            size = arena[ref - 2]
            if not any(values[arena[k]] == 1 for k in range(ref, ref + size)):
                _fail(
                    solver,
                    "model",
                    f"SAT answer falsifies a {group} clause at ref {ref}",
                )


def check_arena_learned(solver, learned) -> None:
    """Arena twin of :func:`check_reference_learned` (encoded literals)."""
    values = solver._values
    current_level = len(solver._trail_lim)
    for enc in learned:
        value = values[enc]
        if value == 0:
            _fail(
                solver,
                "learned",
                f"learned clause {list(learned)} holds unassigned literal {enc}",
            )
        if value == 1:
            _fail(
                solver,
                "learned",
                f"learned clause {list(learned)} is not conflicting: "
                f"{enc} is true",
            )
    if solver._level[learned[0] >> 1] != current_level:
        _fail(
            solver,
            "learned",
            f"asserting literal {learned[0]} not at conflict level "
            f"{current_level}",
        )


def check_arena_invariants(solver) -> None:
    """The cheap always-on bundle: trail + reasons (no database scan)."""
    check_arena_trail(solver)
    check_arena_reasons(solver)


def check_arena_compaction(solver) -> None:
    """Arena compaction integrity: everything, right after ``_reduce_db``."""
    check_arena_integrity(solver)
    check_arena_watches(solver)
    check_arena_reasons(solver)
