"""A self-contained CDCL SAT solver.

The paper's toolchain relies on an SMT solver (for CEGIS) and on Pono's BMC
engine (which itself discharges queries to a SAT/SMT backend).  Neither is
available offline, so this package provides the bottom of the stack: a
conflict-driven clause-learning SAT solver with two-watched-literal
propagation, VSIDS branching, phase saving, Luby restarts and first-UIP
clause learning.  The bit-vector layer (:mod:`repro.smt`) bit-blasts to CNF
and queries this solver.

Two interchangeable kernels implement the identical contract:
:class:`~repro.sat.arena.ArenaSolver` keeps the clause database in a single
flat ``array('i')`` and is the production hot path;
:class:`~repro.sat.solver.SatSolver` keeps per-clause objects and serves as
the readable differential reference.
"""

from repro.sat.arena import ArenaSolver
from repro.sat.cnf import CNF, parse_dimacs, to_dimacs
from repro.sat.solver import SatSolver, SatResult

__all__ = [
    "ArenaSolver",
    "CNF",
    "parse_dimacs",
    "to_dimacs",
    "SatSolver",
    "SatResult",
]
